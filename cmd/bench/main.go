// Command bench runs the repository's tier-1 sort and operator benchmarks
// and emits a machine-readable BENCH_<n>.json, so the performance
// trajectory of the library is tracked commit to commit. The headline
// numbers are the 1M-record SortSlice throughput in the paper-style
// external configuration (memory far smaller than the input, multi-pass
// merge) and the 1M-record operator suite (distinct / top-k / merge join)
// built on the same machinery. The previous report's results ride along as
// this report's baseline.
//
// Usage:
//
//	go run ./cmd/bench              # writes the next free BENCH_<n>.json
//	go run ./cmd/bench -out my.json -n 1000000 -mem 8192
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/record"
	"repro/internal/stream"
)

// result is one benchmark measurement. Mode records whether the sort ran
// on normalized keys ("keyed") or comparator calls ("comparator");
// GenerationNs/MergeNs split the last iteration's wall clock into the run
// generation and merge phases, attributing keyed wins to the phase that
// earned them. All three are absent on rows without a sort behind them.
type result struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode,omitempty"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	GenerationNs int64   `json:"generation_ns,omitempty"`
	MergeNs      int64   `json:"merge_ns,omitempty"`
	MBPerS       float64 `json:"mb_per_s"`
	RecordsPerS  float64 `json:"records_per_s"`
}

// modeOf names a sort's comparison mode from its stats.
func modeOf(st repro.Stats) string {
	if st.Keyed {
		return "keyed"
	}
	return "comparator"
}

// phaseNs reads one named phase's wall clock out of the per-phase
// breakdown the sort reports (Stats.Phases); 0 when the phase is absent.
func phaseNs(st repro.Stats, name string) int64 {
	for _, ph := range st.Phases {
		if ph.Name == name {
			return ph.Wall.Nanoseconds()
		}
	}
	return 0
}

// withPhases attaches the mode and per-phase wall clocks of one
// representative run to a measured result.
func withPhases(r result, st repro.Stats) result {
	r.Mode = modeOf(st)
	r.GenerationNs = phaseNs(st, "generate")
	r.MergeNs = phaseNs(st, "merge")
	return r
}

// storageCell is one cell of the storage matrix: one spill backend sorting
// one distribution, with the backend's byte accounting attached. Ratio is
// raw/stored spilled bytes — the backend's compression win.
type storageCell struct {
	Dataset        string  `json:"dataset"`
	Compression    string  `json:"compression"`
	SpillMemBudget int64   `json:"spill_mem_budget,omitempty"`
	RawSpilled     int64   `json:"raw_spilled_bytes"`
	StoredSpilled  int64   `json:"stored_spilled_bytes"`
	Ratio          float64 `json:"ratio"`
	Blocks         int64   `json:"blocks_written"`
	Overflows      int64   `json:"overflows,omitempty"`
	VerifyFailures int64   `json:"verify_failures"`
	NsPerOp        int64   `json:"ns_per_op"`
	RecordsPerS    float64 `json:"records_per_s"`
}

// policyCell is one cell of the policy × distribution matrix: one run
// generation policy sorting one of the paper's six input distributions.
type policyCell struct {
	Dataset     string  `json:"dataset"`
	Policy      string  `json:"policy"`
	Runs        int     `json:"runs"`
	AvgRunLen   float64 `json:"avg_run_length"`
	Switches    int     `json:"policy_switches,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	RecordsPerS float64 `json:"records_per_s"`
}

// selectionCell is one cell of the selection × distribution × k matrix:
// one selection operator answering one order-statistic query over one of
// the paper's six distributions. The sort-then-index baseline runs the
// full sort machinery at the same memory budget and reads the answer out
// of the sorted result — what every selection cell is trying to beat.
type selectionCell struct {
	Dataset     string  `json:"dataset"`
	Op          string  `json:"op"`
	K           int     `json:"k,omitempty"`
	Spilled     bool    `json:"spilled,omitempty"`
	Swaps       int64   `json:"swaps,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	RecordsPerS float64 `json:"records_per_s"`
}

// keyedCell is one cell of the keyed × policy × distribution matrix: one
// run-generation policy sorting one paper distribution in one comparison
// mode, with the phase split that shows where normalized keys pay.
type keyedCell struct {
	Dataset      string  `json:"dataset"`
	Policy       string  `json:"policy"`
	Mode         string  `json:"mode"`
	Runs         int     `json:"runs"`
	GenerationNs int64   `json:"generation_ns"`
	MergeNs      int64   `json:"merge_ns"`
	NsPerOp      int64   `json:"ns_per_op"`
	RecordsPerS  float64 `json:"records_per_s"`
}

// shardCell is one cell of the cores × shards scaling matrix: a
// range-partitioned distribution sort (Config.Shards) at one GOMAXPROCS
// setting. Checksum fingerprints the sorted output; every cell of a matrix
// must agree, which is the byte-identity guarantee measured at scale.
type shardCell struct {
	Cores       int     `json:"gomaxprocs"`
	Shards      int     `json:"shards"`
	NsPerOp     int64   `json:"ns_per_op"`
	RecordsPerS float64 `json:"records_per_s"`
	PartitionNs int64   `json:"partition_ns,omitempty"`
	MergeNs     int64   `json:"merge_ns,omitempty"`
	Checksum    string  `json:"output_checksum"`
}

// report is the schema of a BENCH_<n>.json file.
type report struct {
	Bench           int             `json:"bench"`
	Date            time.Time       `json:"date"`
	GoVersion       string          `json:"go"`
	GOOS            string          `json:"goos"`
	GOARCH          string          `json:"goarch"`
	GOMAXPROCS      int             `json:"gomaxprocs"`
	Records         int             `json:"records"`
	Memory          int             `json:"memory_records"`
	MatrixRecords   int             `json:"matrix_records,omitempty"`
	Baseline        []result        `json:"baseline"`
	BaselineNote    string          `json:"baseline_note"`
	Results         []result        `json:"results"`
	PolicyMatrix    []policyCell    `json:"policy_matrix,omitempty"`
	KeyedMatrix     []keyedCell     `json:"keyed_matrix,omitempty"`
	StorageMatrix   []storageCell   `json:"storage_matrix,omitempty"`
	SelectionMatrix []selectionCell `json:"selection_matrix,omitempty"`
	CoresOnline     int             `json:"cores_online,omitempty"`
	ShardRecords    int             `json:"shard_matrix_records,omitempty"`
	ShardMemory     int             `json:"shard_matrix_memory,omitempty"`
	ShardMatrix     []shardCell     `json:"shard_matrix,omitempty"`
	Notes           []string        `json:"notes,omitempty"`
}

// elementOnlyReader hides the batch protocol of the wrapped source, forcing
// the sort onto the element-at-a-time compatibility path; with
// Parallelism=1 this reproduces the pre-batching data plane at the API
// boundary and isolates the batch protocol's contribution.
type elementOnlyReader struct{ r *record.SliceReader }

func (e *elementOnlyReader) Read() (record.Record, error) { return e.r.Read() }

// elementOnlyWriter likewise hides the destination's batch support.
type elementOnlyWriter struct{ w *record.SliceWriter }

func (e *elementOnlyWriter) Write(r record.Record) error { return e.w.Write(r) }

// dyingReader serves records until dieAt, then fails — the bench's stand-in
// for a crash mid-sort; the durability rows resume from what it left behind.
type dyingReader struct {
	recs  []record.Record
	pos   int
	dieAt int
}

var errBenchKill = errors.New("bench: simulated crash")

func (d *dyingReader) Read() (record.Record, error) {
	if d.pos >= len(d.recs) {
		return record.Record{}, io.EOF
	}
	if d.pos >= d.dieAt {
		return record.Record{}, errBenchKill
	}
	r := d.recs[d.pos]
	d.pos++
	return r, nil
}

// discard counts writes of any element type and drops them.
type discard[T any] struct{ n int64 }

func (d *discard[T]) Write(T) error { d.n++; return nil }

func (d *discard[T]) WriteBatch(src []T) error { d.n += int64(len(src)); return nil }

// checksumSink fingerprints the sorted record stream (FNV-64a over the
// fixed 16-byte layout) without materialising it, so the shard matrix can
// assert byte-identity across cells on inputs too big to keep per cell.
type checksumSink struct {
	h   uint64
	buf []byte
	n   int64
}

func newChecksumSink() *checksumSink { return &checksumSink{h: fnv.New64a().Sum64()} }

func (c *checksumSink) Write(r record.Record) error {
	return c.WriteBatch([]record.Record{r})
}

func (c *checksumSink) WriteBatch(src []record.Record) error {
	c.buf = c.buf[:0]
	for _, r := range src {
		c.buf = binary.LittleEndian.AppendUint64(c.buf, uint64(r.Key))
		c.buf = binary.LittleEndian.AppendUint64(c.buf, r.Aux)
	}
	h := c.h
	for _, b := range c.buf {
		h = (h ^ uint64(b)) * 1099511628211
	}
	c.h = h
	c.n += int64(len(src))
	return nil
}

func (c *checksumSink) sum() string { return fmt.Sprintf("%016x", c.h) }

func measure(name string, records, elemBytes int, f func() error) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(records) * int64(elemBytes))
		for i := 0; i < b.N; i++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := r.NsPerOp()
	res := result{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     ns,
		MBPerS:      float64(records) * float64(elemBytes) / 1e6 / (float64(ns) / 1e9),
		RecordsPerS: float64(records) / (float64(ns) / 1e9),
	}
	fmt.Printf("%-28s %12d ns/op %8.2f MB/s %12.0f records/s\n", name, ns, res.MBPerS, res.RecordsPerS)
	return res
}

// benchSeq finds the highest existing BENCH_<n>.json: the next report is
// numbered one past it and baselines against it by default, so the report
// number and baseline track the committed sequence instead of being
// hardcoded. The sequence may start anywhere (the repo's begins at 2).
func benchSeq() (next int, latest string) {
	ents, err := os.ReadDir(".")
	if err != nil {
		return 1, ""
	}
	maxN := 0
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return 1, ""
	}
	return maxN + 1, fmt.Sprintf("BENCH_%d.json", maxN)
}

func main() {
	out := flag.String("out", "", "output JSON path (default: next free BENCH_<n>.json)")
	n := flag.Int("n", 1_000_000, "records per sort")
	mn := flag.Int("mn", 400_000, "records per policy-matrix sort")
	mem := flag.Int("mem", 1<<13, "memory budget in records")
	sn := flag.Int("sn", 10_000_000, "records per cores×shards-matrix sort (0 skips the matrix)")
	smem := flag.Int("smem", 1<<17, "memory budget in records for the cores×shards matrix")
	basePath := flag.String("baseline", "", "prior report whose results become this report's baseline (default: latest existing BENCH_<n>.json)")
	flag.Parse()
	benchNum, latest := benchSeq()
	if *basePath == "" {
		*basePath = latest
	}

	recs := repro.Dataset(repro.DatasetRandom, *n, 42)
	cfg := repro.DefaultConfig(*mem)

	var lastStats repro.Stats
	sortSlice := func(par int) error {
		c := cfg
		c.Parallelism = par
		_, st, err := repro.SortSlice(recs, c)
		lastStats = st
		return err
	}
	// The keyed/comparator pair at the quick policy — the configuration
	// where normalized keys rewrite the most work (radix batch sorting plus
	// the prefix merge) — on the same input and memory budget. Everything
	// except the comparison mode is held fixed, so the rows are directly
	// comparable to each other and to the classic sortslice_1m baseline.
	sortModed := func(opts ...repro.Option) error {
		c := cfg
		c.Policy = "quick"
		s, err := repro.New(record.Less, append([]repro.Option{
			repro.WithConfig(c),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key)}, opts...)...)
		if err != nil {
			return err
		}
		_, st, err := s.SortSlice(nil, recs)
		lastStats = st
		return err
	}
	sortElementOnly := func() error {
		s, err := repro.New(record.Less,
			repro.WithConfig(cfg),
			repro.WithParallelism(1),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key))
		if err != nil {
			return err
		}
		out := record.SliceWriter{Recs: make([]record.Record, 0, len(recs))}
		src := &elementOnlyReader{r: record.NewSliceReader(recs)}
		_, err = s.Sort(nil, src, &elementOnlyWriter{w: &out})
		return err
	}

	rep := report{
		Bench:      benchNum,
		Date:       time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    *n,
		Memory:     *mem,
	}
	// Carry the previous report's results as this one's baseline, so every
	// BENCH_<n>.json is comparable against its predecessor in isolation.
	if buf, err := os.ReadFile(*basePath); err == nil {
		var prior struct {
			Bench   int      `json:"bench"`
			Results []result `json:"results"`
		}
		if json.Unmarshal(buf, &prior) == nil {
			rep.Baseline = prior.Results
			// Backfill the mode column onto baseline rows predating it:
			// every earlier harness sorted through the comparator.
			for i := range rep.Baseline {
				if rep.Baseline[i].Mode == "" {
					rep.Baseline[i].Mode = "comparator"
				}
			}
			rep.BaselineNote = fmt.Sprintf(
				"results of BENCH_%d (%s), measured with this harness on the same machine class; "+
					"mode backfilled to \"comparator\" on rows predating the keyed path",
				prior.Bench, *basePath)
		}
	}
	if rep.BaselineNote == "" {
		if *basePath == "" {
			rep.BaselineNote = "no prior BENCH_<n>.json report found"
		} else {
			rep.BaselineNote = fmt.Sprintf("no prior report found at %s", *basePath)
		}
	}

	addSort := func(name string, f func() error) {
		r := measure(name, *n, record.Size, f)
		rep.Results = append(rep.Results, withPhases(r, lastStats))
	}
	addSort("sortslice_1m", func() error { return sortSlice(0) })
	addSort("sortslice_1m_seq", func() error { return sortSlice(1) })
	rep.Results = append(rep.Results,
		measure("sortslice_1m_element_seq", *n, record.Size, sortElementOnly))
	addSort("sortslice_1m_keyed", func() error { return sortModed() })
	addSort("sortslice_1m_comparator", func() error { return sortModed(repro.WithoutKeys()) })
	// Observability overhead row: the keyed external sort again with a
	// tracer and a metrics registry attached (fresh per iteration, so the
	// span buffer never grows unbounded). The notes record the ratio to
	// the plain keyed row; the CI guard keeps it under 5%.
	addSort("sortslice_1m_keyed_obs", func() error {
		return sortModed(repro.WithTracer(repro.NewTracer()), repro.WithMetrics(repro.NewMetrics()))
	})
	// The in-memory-heavy variant: budget close to the input size, merge
	// nearly free; tracks the run-generation hot path alone.
	mem64k := repro.DefaultConfig(1 << 16)
	rep.Results = append(rep.Results, measure("sortslice_1m_mem64k", *n, record.Size, func() error {
		_, _, err := repro.SortSlice(recs, mem64k)
		return err
	}))

	// Durability rows: the external sort again under the fixed 2wrs policy
	// (durable mode rejects the adaptive auto policy) — plain, with a
	// durable manifest recording every finished run, and as a
	// kill-at-half-input crash followed by Resume. The plain/durable pair
	// prices the manifest: a checksummed JSON line per run boundary plus a
	// content checksum over every spilled byte. The resume row times the
	// whole crash-and-recover cycle; its note reports how many runs the
	// recovery reused instead of regenerating.
	durCfg := cfg
	durCfg.Policy = "2wrs"
	durableSorter := func(manifest bool) (*repro.Sorter[record.Record], error) {
		opts := []repro.Option{
			repro.WithConfig(durCfg),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key),
		}
		if manifest {
			opts = append(opts, repro.WithManifest())
		}
		return repro.New(record.Less, opts...)
	}
	addSort("sortslice_1m_2wrs", func() error {
		s, err := durableSorter(false)
		if err != nil {
			return err
		}
		_, st, err := s.SortSlice(nil, recs)
		lastStats = st
		return err
	})
	addSort("sortslice_1m_durable", func() error {
		s, err := durableSorter(true)
		if err != nil {
			return err
		}
		_, st, err := s.SortSlice(nil, recs)
		lastStats = st
		return err
	})
	var resumeStats repro.Stats
	rep.Results = append(rep.Results, measure("resume_1m_killed_half", *n, record.Size, func() error {
		s, err := durableSorter(true)
		if err != nil {
			return err
		}
		var out discard[record.Record]
		if _, err := s.Sort(nil, &dyingReader{recs: recs, dieAt: *n / 2}, &out); !errors.Is(err, errBenchKill) {
			return fmt.Errorf("bench: the dying source did not kill the sort: %v", err)
		}
		resumeStats, err = s.Resume(nil, record.NewSliceReader(recs), &out)
		return err
	}))

	// Operator suite on 1M records. Keys are folded to 1/16th of the input
	// size so duplicate elimination, grouping and the join have real
	// multiplicity; the sort-backed operators inherit the external
	// configuration above.
	fold := func(in []record.Record, mod int64) []record.Record {
		if mod < 1 {
			mod = 1
		}
		out := make([]record.Record, len(in))
		for i, r := range in {
			k := r.Key % mod
			if k < 0 {
				k += mod
			}
			out[i] = record.Record{Key: k, Aux: r.Aux}
		}
		return out
	}
	dupRecs := fold(recs, int64(*n/16))
	opSorter := func() (*repro.Sorter[record.Record], error) {
		return repro.New(record.Less,
			repro.WithConfig(cfg),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key))
	}
	rep.Results = append(rep.Results, measure("distinct_1m", *n, record.Size, func() error {
		s, err := opSorter()
		if err != nil {
			return err
		}
		var out discard[record.Record]
		_, err = s.Distinct(nil, record.NewSliceReader(dupRecs), &out)
		return err
	}))

	// Top-k with k ≪ N: the bounded-heap selection path. The comparison
	// against sortslice_1m in the same report is the "skipped the merge"
	// evidence — the input is identical, only the query differs.
	var topkStats repro.OpStats
	rep.Results = append(rep.Results, measure("topk100_1m", *n, record.Size, func() error {
		s, err := opSorter()
		if err != nil {
			return err
		}
		var out discard[record.Record]
		topkStats, err = s.TopK(nil, record.NewSliceReader(recs), 100, &out)
		return err
	}))

	left, right := fold(recs[:*n/2], int64(*n/10)), fold(recs[*n/2:], int64(*n/10))
	rep.Results = append(rep.Results, measure("join_500kx500k", *n, record.Size, func() error {
		ls, err := opSorter()
		if err != nil {
			return err
		}
		rs, err := opSorter()
		if err != nil {
			return err
		}
		var out discard[record.Record]
		_, err = repro.MergeJoin(nil,
			ls, record.NewSliceReader(left),
			rs, record.NewSliceReader(right),
			func(l, r record.Record) int {
				switch {
				case l.Key < r.Key:
					return -1
				case l.Key > r.Key:
					return 1
				}
				return 0
			},
			func(l, r record.Record) record.Record {
				return record.Record{Key: l.Key, Aux: l.Aux + r.Aux}
			},
			&out)
		return err
	}))

	// stream protocol microbenches: the raw batch-vs-element copy cost.
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = int64(i)
	}
	rep.Results = append(rep.Results, measure("stream_copy_batch_1m", len(vals), 8, func() error {
		w := stream.SliceWriter[int64]{Vals: make([]int64, 0, len(vals))}
		_, err := stream.Copy[int64](&w, stream.NewSliceReader(vals))
		return err
	}))

	// Policy × distribution matrix: every run-generation policy over every
	// paper distribution, full external sorts at the paper-style budget.
	// Cells are timed directly (best of two runs) rather than through
	// testing.Benchmark — run counts are deterministic and the matrix is
	// 30 sorts wide.
	rep.MatrixRecords = *mn
	dists := []repro.DatasetKind{
		repro.DatasetSorted, repro.DatasetReverseSorted, repro.DatasetAlternating,
		repro.DatasetRandom, repro.DatasetMixedBalanced, repro.DatasetMixedImbalanced,
	}
	distName := map[repro.DatasetKind]string{
		repro.DatasetSorted: "sorted", repro.DatasetReverseSorted: "reverse",
		repro.DatasetAlternating: "alternating", repro.DatasetRandom: "random",
		repro.DatasetMixedBalanced: "mixed", repro.DatasetMixedImbalanced: "imbalanced",
	}
	fmt.Printf("\npolicy × distribution matrix (%d records, %d memory):\n", *mn, *mem)
	bestFixed := map[string]policyCell{}
	autoCell := map[string]policyCell{}
	for _, dist := range dists {
		data := repro.Dataset(dist, *mn, 42)
		for _, pol := range repro.Policies() {
			c := repro.DefaultConfig(*mem)
			c.Policy = pol
			var stats repro.Stats
			best := int64(-1)
			for trial := 0; trial < 2; trial++ {
				start := time.Now()
				_, st, err := repro.SortSlice(data, c)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
					best, stats = ns, st
				}
			}
			cell := policyCell{
				Dataset:     distName[dist],
				Policy:      pol,
				Runs:        stats.Runs,
				AvgRunLen:   stats.AvgRunLength,
				Switches:    stats.PolicySwitches,
				NsPerOp:     best,
				RecordsPerS: float64(*mn) / (float64(best) / 1e9),
			}
			rep.PolicyMatrix = append(rep.PolicyMatrix, cell)
			fmt.Printf("  %-11s %-11s %6d runs %12.0f avg %12d ns %2d switches\n",
				cell.Dataset, cell.Policy, cell.Runs, cell.AvgRunLen, cell.NsPerOp, cell.Switches)
			if pol == "auto" {
				autoCell[cell.Dataset] = cell
			} else if b, ok := bestFixed[cell.Dataset]; !ok || cell.Runs < b.Runs ||
				(cell.Runs == b.Runs && cell.NsPerOp < b.NsPerOp) {
				// "Best" is fewest runs — the quantity run-generation policies
				// control, and what merge I/O pays for on real devices —
				// with wall time as the tie-break.
				bestFixed[cell.Dataset] = cell
			}
		}
	}
	for _, dist := range dists {
		a, b := autoCell[distName[dist]], bestFixed[distName[dist]]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"policy matrix %s: auto generated %d runs vs best fixed policy's %d (%s) — %.2fx the runs, %.2fx the time (%d switches)",
			distName[dist], a.Runs, b.Runs, b.Policy,
			float64(a.Runs)/float64(b.Runs), float64(a.NsPerOp)/float64(b.NsPerOp), a.Switches))
	}
	var rsRev, autoRev policyCell
	for _, c := range rep.PolicyMatrix {
		if c.Dataset == "reverse" {
			if c.Policy == "rs" {
				rsRev = c
			}
			if c.Policy == "auto" {
				autoRev = c
			}
		}
	}
	if autoRev.Runs > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"descending input: classic rs generated %d runs, auto %d — %.1fx fewer",
			rsRev.Runs, autoRev.Runs, float64(rsRev.Runs)/float64(autoRev.Runs)))
	}

	// Keyed × policy × distribution matrix: the policy sweep again, once
	// per comparison mode, with the generation/merge phase split attached.
	// Run counts are identical between modes by construction (the keyed
	// path makes pointwise the same decisions), so the ns columns isolate
	// what normalized keys are worth per policy and input shape.
	fmt.Printf("\nkeyed × policy × distribution matrix (%d records, %d memory):\n", *mn, *mem)
	keyedNs := map[string]int64{}
	for _, dist := range dists {
		data := repro.Dataset(dist, *mn, 42)
		for _, pol := range repro.Policies() {
			for _, mode := range []string{"keyed", "comparator"} {
				opts := []repro.Option{
					repro.WithConfig(func() repro.Config {
						c := repro.DefaultConfig(*mem)
						c.Policy = pol
						return c
					}()),
					repro.WithCodec(repro.RecordCodec()),
					repro.WithKey(record.Key),
				}
				if mode == "comparator" {
					opts = append(opts, repro.WithoutKeys())
				}
				var stats repro.Stats
				best := int64(-1)
				for trial := 0; trial < 2; trial++ {
					s, err := repro.New(record.Less, opts...)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					start := time.Now()
					_, st, err := s.SortSlice(nil, data)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
						best, stats = ns, st
					}
				}
				cell := keyedCell{
					Dataset:      distName[dist],
					Policy:       pol,
					Mode:         modeOf(stats),
					Runs:         stats.Runs,
					GenerationNs: phaseNs(stats, "generate"),
					MergeNs:      phaseNs(stats, "merge"),
					NsPerOp:      best,
					RecordsPerS:  float64(*mn) / (float64(best) / 1e9),
				}
				rep.KeyedMatrix = append(rep.KeyedMatrix, cell)
				keyedNs[cell.Dataset+"/"+pol+"/"+cell.Mode] = best
				fmt.Printf("  %-11s %-11s %-10s %6d runs %12d ns (gen %12d, merge %12d)\n",
					cell.Dataset, cell.Policy, cell.Mode, cell.Runs,
					cell.NsPerOp, cell.GenerationNs, cell.MergeNs)
			}
		}
	}
	for _, pol := range repro.Policies() {
		var ratio float64
		n := 0
		for _, dist := range dists {
			k := keyedNs[distName[dist]+"/"+pol+"/keyed"]
			c := keyedNs[distName[dist]+"/"+pol+"/comparator"]
			if k > 0 && c > 0 {
				ratio += float64(c) / float64(k)
				n++
			}
		}
		if n > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"keyed matrix %s: keyed mode averaged %.2fx the comparator mode's throughput across the six distributions",
				pol, ratio/float64(n)))
		}
	}

	// Storage matrix: every spill backend over spill streams at the two
	// compressibility extremes (plus sorted keys in between), full external
	// sorts at the paper-style budget. "dup" folds keys to 64 values and
	// zeroes payloads — the dup-heavy, compressible stream; "random" fills
	// both words from a PRNG — incompressible, the worst case a compressing
	// backend must not make worse than one frame per block.
	rng := rand.New(rand.NewSource(42))
	storageDists := []struct {
		name string
		data []record.Record
	}{
		{"dup", func() []record.Record {
			out := make([]record.Record, *mn)
			for i := range out {
				out[i] = record.Record{Key: int64(rng.Intn(64)), Aux: 0}
			}
			return out
		}()},
		{"sorted", func() []record.Record {
			out := make([]record.Record, *mn)
			for i := range out {
				out[i] = record.Record{Key: int64(i), Aux: uint64(i)}
			}
			return out
		}()},
		{"random", func() []record.Record {
			out := make([]record.Record, *mn)
			for i := range out {
				out[i] = record.Record{Key: int64(rng.Uint64() >> 1), Aux: rng.Uint64()}
			}
			return out
		}()},
	}
	type backendSpec struct {
		comp   string
		budget int64
	}
	backends := []backendSpec{
		{"raw", 0}, {"none", 0}, {"flate", 0}, {"gzip", 0},
		{"flate", 4 << 20}, // tiered: runs start in a 4 MiB memory tier
	}
	fmt.Printf("\nstorage × distribution matrix (%d records, %d memory):\n", *mn, *mem)
	ratio := map[string]float64{}
	for _, dist := range storageDists {
		for _, be := range backends {
			c := repro.DefaultConfig(*mem)
			c.Storage = repro.Storage{Compression: be.comp, MemoryBudgetBytes: be.budget}
			var stats repro.Stats
			best := int64(-1)
			for trial := 0; trial < 2; trial++ {
				start := time.Now()
				_, st, err := repro.SortSlice(dist.data, c)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
					best, stats = ns, st
				}
			}
			cell := storageCell{
				Dataset:        dist.name,
				Compression:    be.comp,
				SpillMemBudget: be.budget,
				RawSpilled:     stats.IO.RawBytesWritten,
				StoredSpilled:  stats.IO.StoredBytesWritten,
				Ratio:          stats.IO.CompressionRatio(),
				Blocks:         stats.IO.BlocksWritten,
				Overflows:      stats.IO.Overflows,
				VerifyFailures: stats.IO.VerifyFailures,
				NsPerOp:        best,
				RecordsPerS:    float64(*mn) / (float64(best) / 1e9),
			}
			rep.StorageMatrix = append(rep.StorageMatrix, cell)
			fmt.Printf("  %-7s %-6s budget=%-8d %10d raw -> %10d stored (%.2fx) %3d overflows %12d ns\n",
				cell.Dataset, cell.Compression, cell.SpillMemBudget,
				cell.RawSpilled, cell.StoredSpilled, cell.Ratio, cell.Overflows, cell.NsPerOp)
			if be.budget == 0 {
				ratio[dist.name+"/"+be.comp] = cell.Ratio
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"storage matrix: flate spilled %.2fx fewer bytes than raw on the dup-heavy stream (gzip %.2fx); "+
			"incompressible random stayed at %.2fx (stored-block fallback caps the overhead at one 20-byte frame per 4 KiB block)",
		ratio["dup/flate"], ratio["dup/gzip"], ratio["random/flate"]))
	rep.Notes = append(rep.Notes,
		"spill integrity: every framed backend CRC32-checksums each block; TestCorruptSpillSurfacesChecksumError "+
			"(internal/extsort) pins that a flipped byte in a spilled block fails the merge with storage.ErrChecksum instead of returning wrong output")

	// Cores × shards scaling matrix: the range-partitioned distribution
	// sort (Config.Shards) over a uniform random stream, swept across
	// GOMAXPROCS settings. Keys are unique (Aux is derived from Key), so
	// every cell's output is byte-identical by the sharding guarantee —
	// the checksum column proves it at a scale the tests cannot afford.
	if *sn > 0 {
		rep.CoresOnline = runtime.NumCPU()
		rep.ShardRecords = *sn
		rep.ShardMemory = *smem
		fmt.Printf("\ncores × shards matrix (%d records, %d memory, %d cores online):\n",
			*sn, *smem, rep.CoresOnline)
		shardData := repro.Dataset(repro.DatasetRandom, *sn, 42)
		for i := range shardData {
			shardData[i].Aux = uint64(shardData[i].Key) * 0x9E3779B97F4A7C15
		}
		prevProcs := runtime.GOMAXPROCS(0)
		wantSum := ""
		oneCore := map[int]int64{} // shards -> ns at GOMAXPROCS=1
		for _, cores := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(cores)
			for _, shards := range []int{1, 4, 8} {
				s, err := repro.New(record.Less,
					repro.WithConfig(repro.DefaultConfig(*smem)),
					repro.WithCodec(repro.RecordCodec()),
					repro.WithKey(record.Key),
					repro.WithShards(shards))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				sink := newChecksumSink()
				start := time.Now()
				st, err := s.Sort(nil, record.NewSliceReader(shardData), sink)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				ns := time.Since(start).Nanoseconds()
				cell := shardCell{
					Cores:       cores,
					Shards:      shards,
					NsPerOp:     ns,
					RecordsPerS: float64(*sn) / (float64(ns) / 1e9),
					Checksum:    sink.sum(),
				}
				if shards > 1 {
					cell.PartitionNs = phaseNs(st, "partition")
				} else {
					cell.PartitionNs = phaseNs(st, "generate")
				}
				cell.MergeNs = phaseNs(st, "merge")
				if wantSum == "" {
					wantSum = cell.Checksum
				} else if cell.Checksum != wantSum {
					fmt.Fprintf(os.Stderr, "shard matrix: output diverged at cores=%d shards=%d: %s != %s\n",
						cores, shards, cell.Checksum, wantSum)
					os.Exit(1)
				}
				if cores == 1 {
					oneCore[shards] = ns
				}
				rep.ShardMatrix = append(rep.ShardMatrix, cell)
				fmt.Printf("  cores=%d shards=%d %14d ns %12.0f records/s  checksum %s\n",
					cores, shards, cell.NsPerOp, cell.RecordsPerS, cell.Checksum)
			}
		}
		runtime.GOMAXPROCS(prevProcs)
		var best shardCell
		for _, c := range rep.ShardMatrix {
			if c.Cores == 8 && c.Shards == 8 {
				best = c
			}
		}
		if base := oneCore[1]; base > 0 && best.NsPerOp > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"shard matrix: every cell produced checksum %s — sharded output is byte-identical to the "+
					"single-stream sort at every cores × shards setting; 8-core 8-shard ran at %.2fx the "+
					"1-core 1-shard wall (%d vs %d ns) with %d cores physically online — scaling beyond "+
					"cores_online is bounded by the hardware, not the engine",
				wantSum, float64(base)/float64(best.NsPerOp), best.NsPerOp, base, rep.CoresOnline))
		}
	}

	// Selection × distribution × k matrix: order-statistic queries over the
	// paper's six distributions. Every (distribution, k) pair runs the
	// dualheap Select path at an in-memory budget; each distribution also
	// runs the full-sort-then-index baseline at the same budget (its cost is
	// k-independent), and — at the middle k — external Select at the paper
	// budget (the spill path) plus the soft-heap approximate path and a
	// three-point Quantiles call. Selection must beat the baseline at k ≪ n.
	selSorter := func(budget int) *repro.Sorter[record.Record] {
		s, err := repro.New(record.Less,
			repro.WithConfig(repro.DefaultConfig(budget)),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return s
	}
	// timeSel reports the faster of two runs of one selection query.
	timeSel := func(run func() (repro.SelectStats, error)) (int64, repro.SelectStats) {
		best := int64(-1)
		var stats repro.SelectStats
		for trial := 0; trial < 2; trial++ {
			start := time.Now()
			st, err := run()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
				best, stats = ns, st
			}
		}
		return best, stats
	}
	selCell := func(dist, op string, k int, ns int64, st repro.SelectStats) selectionCell {
		cell := selectionCell{
			Dataset: dist, Op: op, K: k,
			Spilled: st.Sorted, Swaps: st.Swaps,
			NsPerOp:     ns,
			RecordsPerS: float64(*mn) / (float64(ns) / 1e9),
		}
		rep.SelectionMatrix = append(rep.SelectionMatrix, cell)
		fmt.Printf("  %-11s %-15s k=%-8d %12d ns  spilled=%-5v %8d swaps\n",
			cell.Dataset, cell.Op, cell.K, cell.NsPerOp, cell.Spilled, cell.Swaps)
		return cell
	}
	fmt.Printf("\nselection × distribution × k matrix (%d records, in-memory budget %d / spill budget %d):\n",
		*mn, *mn, *mem)
	ks := []int{100, *mn / 64, *mn / 2}
	for _, dist := range dists {
		data := repro.Dataset(dist, *mn, 42)
		name := distName[dist]

		// Full-sort-then-index baseline: sort everything at the same
		// in-memory budget, read the answer out of the sorted slice. One
		// cell per distribution — indexing is free, so k doesn't matter.
		baseNs := int64(-1)
		for trial := 0; trial < 2; trial++ {
			start := time.Now()
			sorted, _, err := repro.SortSlice(data, repro.DefaultConfig(*mn))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			_ = sorted[len(sorted)/2]
			if ns := time.Since(start).Nanoseconds(); baseNs < 0 || ns < baseNs {
				baseNs = ns
			}
		}
		baseCell := selCell(name, "sort_then_index", 0, baseNs, repro.SelectStats{})

		var smallK selectionCell
		for _, k := range ks {
			ns, st := timeSel(func() (repro.SelectStats, error) {
				_, st, err := selSorter(*mn).Select(nil, record.NewSliceReader(data), k)
				return st, err
			})
			cell := selCell(name, "select", k, ns, st)
			if k == ks[0] {
				smallK = cell
			}
		}

		midK := ks[1]
		ns, st := timeSel(func() (repro.SelectStats, error) {
			_, st, err := selSorter(*mem).Select(nil, record.NewSliceReader(data), midK)
			return st, err
		})
		selCell(name, "select_spill", midK, ns, st)
		ns, st = timeSel(func() (repro.SelectStats, error) {
			_, st, err := selSorter(*mn).ApproxSelect(nil, record.NewSliceReader(data), midK, 0.01)
			return st, err
		})
		selCell(name, "approx_select", midK, ns, st)
		ns, st = timeSel(func() (repro.SelectStats, error) {
			_, st, err := selSorter(*mn).Quantiles(nil, record.NewSliceReader(data), []float64{0.5, 0.9, 0.99})
			return st, err
		})
		selCell(name, "quantiles", 0, ns, st)

		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"selection matrix %s: dualheap select k=%d answered in %d ns vs full-sort-then-index %d ns — %.1fx faster",
			name, smallK.K, smallK.NsPerOp, baseCell.NsPerOp,
			float64(baseCell.NsPerOp)/float64(smallK.NsPerOp)))
	}

	var sortNs, topkNs int64
	var keyedRow, compRow, obsRow, plainRow, durableRow, resumeRow result
	for _, r := range rep.Results {
		switch r.Name {
		case "sortslice_1m":
			sortNs = r.NsPerOp
		case "topk100_1m":
			topkNs = r.NsPerOp
		case "sortslice_1m_keyed":
			keyedRow = r
		case "sortslice_1m_comparator":
			compRow = r
		case "sortslice_1m_keyed_obs":
			obsRow = r
		case "sortslice_1m_2wrs":
			plainRow = r
		case "sortslice_1m_durable":
			durableRow = r
		case "resume_1m_killed_half":
			resumeRow = r
		}
	}
	if plainRow.NsPerOp > 0 && durableRow.NsPerOp > 0 {
		note := fmt.Sprintf(
			"durability: the manifest-enabled 2wrs sort ran at %.3fx the plain 2wrs wall (%d vs %d ns/op) — "+
				"the price of a checksummed manifest line per run boundary plus content checksums over every spilled byte",
			float64(durableRow.NsPerOp)/float64(plainRow.NsPerOp), durableRow.NsPerOp, plainRow.NsPerOp)
		if resumeRow.NsPerOp > 0 && resumeStats.Runs > 0 {
			note += fmt.Sprintf("; a kill at half input plus Resume completed in %.2fx the durable full-sort wall, "+
				"recovering %d of %d runs from the manifest instead of regenerating them",
				float64(resumeRow.NsPerOp)/float64(durableRow.NsPerOp),
				resumeStats.RunsRecovered, resumeStats.Runs)
		}
		rep.Notes = append(rep.Notes, note)
	}
	if keyedRow.NsPerOp > 0 && obsRow.NsPerOp > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"observability overhead: tracing+metrics enabled sortslice_1m_keyed ran at %.3fx the disabled wall "+
				"(%d vs %d ns/op; budget <1.05x, enforced by TestMetricsOverheadGuard)",
			float64(obsRow.NsPerOp)/float64(keyedRow.NsPerOp), obsRow.NsPerOp, keyedRow.NsPerOp))
	}
	if keyedRow.NsPerOp > 0 && compRow.NsPerOp > 0 {
		note := fmt.Sprintf(
			"keyed sortslice_1m (quick policy): %.0f records/s keyed vs %.0f comparator — %.2fx; "+
				"generation %d ns vs %d, merge %d ns vs %d",
			keyedRow.RecordsPerS, compRow.RecordsPerS,
			float64(compRow.NsPerOp)/float64(keyedRow.NsPerOp),
			keyedRow.GenerationNs, compRow.GenerationNs,
			keyedRow.MergeNs, compRow.MergeNs)
		for _, b := range rep.Baseline {
			if b.Name == "sortslice_1m" && b.RecordsPerS > 0 {
				note += fmt.Sprintf("; %.2fx the previous report's comparator sortslice_1m (%.0f records/s)",
					keyedRow.RecordsPerS/b.RecordsPerS, b.RecordsPerS)
			}
		}
		rep.Notes = append(rep.Notes, note)
	}
	if sortNs > 0 && topkNs > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"topk100_1m avoided the full merge: OpStats{Sorted:%v, Runs:%d, MergeOps:%d} "+
				"(bounded-heap selection, nothing spilled), %.1fx faster than sortslice_1m on the same input",
			topkStats.Sorted, topkStats.Sort.Runs, topkStats.Sort.MergeOps,
			float64(sortNs)/float64(topkNs)))
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", benchNum)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
