// Command bench runs the repository's tier-1 sort benchmarks and emits a
// machine-readable BENCH_<n>.json, so the performance trajectory of the
// library is tracked commit to commit. The headline number is the
// 1M-record SortSlice throughput in the paper-style external configuration
// (memory far smaller than the input, multi-pass merge).
//
// Usage:
//
//	go run ./cmd/bench              # writes the next free BENCH_<n>.json
//	go run ./cmd/bench -out my.json -n 1000000 -mem 8192
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/record"
	"repro/internal/stream"
)

// result is one benchmark measurement.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	RecordsPerS float64 `json:"records_per_s"`
}

// report is the schema of a BENCH_<n>.json file.
type report struct {
	Bench        int       `json:"bench"`
	Date         time.Time `json:"date"`
	GoVersion    string    `json:"go"`
	GOOS         string    `json:"goos"`
	GOARCH       string    `json:"goarch"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	Records      int       `json:"records"`
	Memory       int       `json:"memory_records"`
	Baseline     []result  `json:"baseline"`
	BaselineNote string    `json:"baseline_note"`
	Results      []result  `json:"results"`
}

// elementOnlyReader hides the batch protocol of the wrapped source, forcing
// the sort onto the element-at-a-time compatibility path; with
// Parallelism=1 this reproduces the pre-batching data plane at the API
// boundary and isolates the batch protocol's contribution.
type elementOnlyReader struct{ r *record.SliceReader }

func (e *elementOnlyReader) Read() (record.Record, error) { return e.r.Read() }

// elementOnlyWriter likewise hides the destination's batch support.
type elementOnlyWriter struct{ w *record.SliceWriter }

func (e *elementOnlyWriter) Write(r record.Record) error { return e.w.Write(r) }

func measure(name string, records, elemBytes int, f func() error) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(records) * int64(elemBytes))
		for i := 0; i < b.N; i++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := r.NsPerOp()
	res := result{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     ns,
		MBPerS:      float64(records) * float64(elemBytes) / 1e6 / (float64(ns) / 1e9),
		RecordsPerS: float64(records) / (float64(ns) / 1e9),
	}
	fmt.Printf("%-28s %12d ns/op %8.2f MB/s %12.0f records/s\n", name, ns, res.MBPerS, res.RecordsPerS)
	return res
}

func nextBenchFile() string {
	for n := 1; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(name); os.IsNotExist(err) {
			return name
		}
	}
}

func main() {
	out := flag.String("out", "", "output JSON path (default: next free BENCH_<n>.json)")
	n := flag.Int("n", 1_000_000, "records per sort")
	mem := flag.Int("mem", 1<<13, "memory budget in records")
	flag.Parse()

	recs := repro.Dataset(repro.DatasetRandom, *n, 42)
	cfg := repro.DefaultConfig(*mem)

	sortSlice := func(par int) error {
		c := cfg
		c.Parallelism = par
		_, _, err := repro.SortSlice(recs, c)
		return err
	}
	sortElementOnly := func() error {
		s, err := repro.New(record.Less,
			repro.WithConfig(cfg),
			repro.WithParallelism(1),
			repro.WithCodec(repro.RecordCodec()),
			repro.WithKey(record.Key))
		if err != nil {
			return err
		}
		out := record.SliceWriter{Recs: make([]record.Record, 0, len(recs))}
		src := &elementOnlyReader{r: record.NewSliceReader(recs)}
		_, err = s.Sort(nil, src, &elementOnlyWriter{w: &out})
		return err
	}

	rep := report{
		Bench:      2,
		Date:       time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    *n,
		Memory:     *mem,
		BaselineNote: "pre-refactor seed (commit 3358d7a): element-at-a-time data plane, " +
			"single-threaded, measured with this harness' workload on the same machine class",
		Baseline: []result{
			// Recorded before the batched-data-plane refactor landed.
			{Name: "sortslice_1m_pre_refactor", Iters: 6, NsPerOp: 1_042_000_000, MBPerS: 15.4, RecordsPerS: 960_000},
			{Name: "sortslice_1m_mem64k_pre_refactor", Iters: 6, NsPerOp: 510_000_000, MBPerS: 31.4, RecordsPerS: 1_960_000},
		},
	}

	rep.Results = append(rep.Results,
		measure("sortslice_1m", *n, record.Size, func() error { return sortSlice(0) }),
		measure("sortslice_1m_seq", *n, record.Size, func() error { return sortSlice(1) }),
		measure("sortslice_1m_element_seq", *n, record.Size, sortElementOnly),
	)
	// The in-memory-heavy variant: budget close to the input size, merge
	// nearly free; tracks the run-generation hot path alone.
	mem64k := repro.DefaultConfig(1 << 16)
	rep.Results = append(rep.Results, measure("sortslice_1m_mem64k", *n, record.Size, func() error {
		_, _, err := repro.SortSlice(recs, mem64k)
		return err
	}))

	// stream protocol microbenches: the raw batch-vs-element copy cost.
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = int64(i)
	}
	rep.Results = append(rep.Results, measure("stream_copy_batch_1m", len(vals), 8, func() error {
		w := stream.SliceWriter[int64]{Vals: make([]int64, 0, len(vals))}
		_, err := stream.Copy[int64](&w, stream.NewSliceReader(vals))
		return err
	}))

	path := *out
	if path == "" {
		path = nextBenchFile()
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
