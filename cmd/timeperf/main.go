// Command timeperf reproduces the Chapter 6 time-performance experiments on
// the simulated 2010 disk: the fan-in analysis (Fig 6.1) and the RS vs 2WRS
// sweeps for random, mixed, alternating and reverse-sorted inputs
// (Figs 6.2-6.7). Reported times are simulated I/O durations.
//
// Usage:
//
//	timeperf -scale small [-fig 6.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timeperf: ")
	scale := flag.String("scale", "small", "experiment scale: tiny, small, paper")
	fig := flag.String("fig", "", "run a single figure (6.1 … 6.7); default all")
	flag.Parse()
	p, err := exp.ParseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}

	type sweep struct {
		id, title, xLabel string
		run               func(exp.Params) ([]exp.TimePoint, error)
	}
	sweeps := []sweep{
		{"6.2", "Fig 6.2 — random input, time vs memory", "memory (records)", exp.Fig62},
		{"6.3", "Fig 6.3 — random input, time vs input size", "input (records)", exp.Fig63},
		{"6.4", "Fig 6.4 — mixed input, time vs memory", "memory (records)", exp.Fig64},
		{"6.5", "Fig 6.5 — mixed input, time vs input size", "input (records)", exp.Fig65},
		{"6.6", "Fig 6.6 — alternating input, time vs sorted sections", "sections", exp.Fig66},
		{"6.7", "Fig 6.7 — reverse sorted input, time vs input size", "input (records)", exp.Fig67},
	}

	if *fig == "" || *fig == "6.1" {
		fmt.Println("Fig 6.1 — merge time vs fan-in (simulated disk)")
		pts, err := exp.Fig61FanIn(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.RenderFanIn(pts))
		fmt.Printf("best fan-in: %d (thesis: 10)\n\n", exp.BestFanIn(pts))
	}
	for _, s := range sweeps {
		if *fig != "" && *fig != s.id {
			continue
		}
		fmt.Println(s.title)
		pts, err := s.run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.RenderTimePoints(s.xLabel, pts))
	}
}
