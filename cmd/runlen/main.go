// Command runlen reproduces the run-length experiments of Chapter 5:
// Table 5.13 (average run length relative to memory for RS and three 2WRS
// configurations over the six datasets) and the Fig 5.4 buffer-size sweep.
//
// Usage:
//
//	runlen -scale small
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("runlen: ")
	scale := flag.String("scale", "small", "experiment scale: tiny, small, paper")
	flag.Parse()
	p, err := exp.ParseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Table 5.13 — average run length relative to memory (memory=%d records, input=%d records)\n",
		p.Memory, p.Input)
	fmt.Println("cfg1: input buffer 0.02% | cfg2: both buffers 20% | cfg3: both buffers 2% (recommended)")
	fmt.Println("('inf' = the whole input fit in one run; the thesis prints the run COUNT 50 in its")
	fmt.Println(" alternating row — §5.2.3 gives the equivalent 5x-memory average length shown here)")
	fmt.Println()
	rows, err := exp.Table513(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderTable513(rows))

	fmt.Println("Fig 5.4 — run length vs buffer size (random input, both buffers)")
	pts, err := exp.Fig54BufferSweep(p)
	if err != nil {
		log.Fatal(err)
	}
	var prows [][]string
	for _, pt := range pts {
		prows = append(prows, []string{
			fmt.Sprintf("%.2f%%", pt.FracPercent),
			fmt.Sprintf("%.2f", pt.Ratio),
		})
	}
	fmt.Println(exp.RenderTable([]string{"buffer size", "run length / memory"}, prows))
}
