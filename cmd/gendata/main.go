// Command gendata generates binary record files with the paper's six input
// distributions (Fig 5.1), for use with cmd/extsort.
//
// Usage:
//
//	gendata -kind mixed -n 1000000 -seed 42 -o mixed.rec
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/record"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gendata: ")
	var (
		kindName = flag.String("kind", "random", "dataset kind: sorted, reverse, alternating, random, mixed, imbalanced")
		n        = flag.Int("n", 1_000_000, "number of records")
		seed     = flag.Int64("seed", 1, "random seed")
		sections = flag.Int("sections", 50, "monotone sections for the alternating kind")
		noise    = flag.Int64("noise", 1000, "uniform noise added to every key (0 disables)")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := gen.ParseKind(*kindName)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	w := record.NewByteWriter(bw)
	g := gen.New(gen.Config{Kind: kind, N: *n, Seed: *seed, Sections: *sections, Noise: *noise})
	var count int64
	for {
		rec, err := g.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
		count++
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d %s records (%d bytes) to %s\n", count, kind, count*record.Size, *out)
}
