package repro

import (
	"context"
	"strings"
	"testing"
)

// TestValidateRejectsUnknownPolicy pins the no-silent-default contract: a
// typoed policy name must fail validation with an error that lists every
// valid policy, not fall back to some default generator.
func TestValidateRejectsUnknownPolicy(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Policy = "quicksort"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown policy name passed Validate")
	}
	for _, name := range Policies() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid policy %q", err, name)
		}
	}
	if _, err := New(func(a, b int64) bool { return a < b }, WithPolicy("quicksort")); err == nil {
		t.Fatal("New accepted an unknown policy name")
	}
}

func TestPoliciesListsAll(t *testing.T) {
	want := []string{"2wrs", "rs", "alternating", "quick", "auto"}
	got := Policies()
	if len(got) != len(want) {
		t.Fatalf("Policies() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Policies() = %v, want %v", got, want)
		}
	}
}

// TestNewDefaultsToAuto: the generic constructor adapts by default, while
// WithAlgorithm and WithConfig opt back into the fixed legacy generators.
func TestNewDefaultsToAuto(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	s, err := New(less)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Policy; got != "auto" {
		t.Fatalf("default policy = %q, want auto", got)
	}
	s, err = New(less, WithAlgorithm(RS))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Policy; got != "" {
		t.Fatalf("WithAlgorithm left policy %q, want empty (legacy algorithm)", got)
	}
	s, err = New(less, WithConfig(DefaultConfig(1000)))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Policy; got != "" {
		t.Fatalf("WithConfig left policy %q, want the config's own (empty)", got)
	}
}

// TestWithPolicyFixedSelection checks that the named fixed policies really
// drive run generation: classic RS collapses an ascending stream into one
// run, and the stats name the policy that ran.
func TestWithPolicyFixedSelection(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	in := make([]int64, 10000)
	for i := range in {
		in[i] = int64(i)
	}
	for _, name := range []string{"rs", "2wrs", "auto"} {
		s, err := New(less, WithPolicy(name), WithMemoryRecords(500))
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.SortSlice(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) {
			t.Fatalf("%s: %d records out", name, len(out))
		}
		if stats.Runs != 1 {
			t.Fatalf("%s on sorted input: %d runs, want 1", name, stats.Runs)
		}
		if stats.Policy != name {
			t.Fatalf("Stats.Policy = %q, want %q", stats.Policy, name)
		}
	}
	// The descending contrast: alternating absorbs the trend that pins
	// classic RS to memory-sized runs.
	rev := make([]int64, 10000)
	for i := range rev {
		rev[i] = int64(len(rev) - i)
	}
	runs := map[string]int{}
	for _, name := range []string{"rs", "alternating"} {
		s, err := New(less, WithPolicy(name), WithMemoryRecords(500))
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := s.SortSlice(context.Background(), rev)
		if err != nil {
			t.Fatal(err)
		}
		runs[name] = stats.Runs
	}
	if runs["rs"] < 3*runs["alternating"] {
		t.Fatalf("descending input: rs=%d runs vs alternating=%d, want ≥3x contrast", runs["rs"], runs["alternating"])
	}
}
