package repro

import (
	"context"
	"sort"
	"testing"
)

// FuzzSelectRoundTrip drives the selection operators with arbitrary inputs
// across the in-memory/spill boundary: the memory budget is fuzzed down to
// the minimum, so the same logical query lands on the dualheap path, the
// run-generation path, or straddles them between operators — and every
// answer must match the sort-then-index reference exactly.
func FuzzSelectRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9}, uint8(3), uint8(0))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255}, uint8(7), uint8(255))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(20), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, kb, mem uint8) {
		n := len(raw)
		if n == 0 {
			return
		}
		vals := make([]int64, n)
		for i, b := range raw {
			vals[i] = int64(int8(b)) // narrow range forces duplicates
		}
		ref := append([]int64(nil), vals...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })

		k := int(kb)%n + 1
		budget := int(mem)%64 + 3 // straddles the spill boundary for most inputs
		s, err := New(func(a, b int64) bool { return a < b }, WithMemoryRecords(budget), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		got, st, err := s.Select(ctx, newSliceSource(vals), k)
		if err != nil {
			t.Fatalf("Select(k=%d, budget=%d): %v", k, budget, err)
		}
		if got != ref[k-1] {
			t.Fatalf("Select(k=%d, budget=%d) = %d, want %d", k, budget, got, ref[k-1])
		}
		if wantSpill := n > budget; st.Sorted != wantSpill {
			t.Fatalf("Select(k=%d, n=%d, budget=%d): Sorted = %v, want %v", k, n, budget, st.Sorted, wantSpill)
		}

		qs := []float64{0, 0.5, 1}
		qgot, _, err := s.Quantiles(ctx, newSliceSource(vals), qs)
		if err != nil {
			t.Fatalf("Quantiles(budget=%d): %v", budget, err)
		}
		qwant := quantileRef(ref, qs)
		for i := range qwant {
			if qgot[i] != qwant[i] {
				t.Fatalf("Quantiles(budget=%d)[%d] = %d, want %d", budget, i, qgot[i], qwant[i])
			}
		}

		var bottom sliceSink[int64]
		if _, err := s.BottomK(ctx, newSliceSource(vals), k, &bottom); err != nil {
			t.Fatalf("BottomK(k=%d, budget=%d): %v", k, budget, err)
		}
		requireEqual(t, "fuzz bottom-k", bottom.vals, ref[n-k:])

		var top sliceSink[int64]
		if _, err := s.TopK(ctx, newSliceSource(vals), k, &top); err != nil {
			t.Fatalf("TopK(k=%d, budget=%d): %v", k, budget, err)
		}
		requireEqual(t, "fuzz top-k", top.vals, ref[:k])
	})
}
