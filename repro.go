// Package repro is a production-quality Go implementation of Two-way
// Replacement Selection (2WRS), the external-sorting run-generation
// algorithm of Martínez Palau, Domínguez-Sal and Larriba-Pey (VLDB 2010),
// together with every substrate the paper builds on: classic replacement
// selection and Load-Sort-Store baselines, a loser-tree k-way merge phase
// with configurable fan-in, polyphase merge, the Appendix A backward file
// format for decreasing streams, the paper's six benchmark datasets, the
// snowplow differential-equation model of RS, and the factorial-ANOVA
// machinery used for the paper's statistical analysis.
//
// # The generic API
//
// The primary entry point is the generic Sorter, which externally sorts
// streams of any element type under a configurable memory budget. A Sorter
// is built from a comparator plus functional options and driven with a
// context:
//
//	s, err := repro.New(func(a, b string) bool { return a < b },
//	    repro.WithMemoryRecords(1<<16),
//	    repro.WithTempDir("/tmp/sort"))
//	stats, err := s.Sort(ctx, src, dst) // src yields strings, dst receives them sorted
//
// Elements spill to disk through a pluggable Codec: fixed-width codecs
// reproduce the paper's record layout, and the built-in length-prefixed
// variable-width codecs handle strings and byte slices of any length.
// Codecs for common element types are inferred automatically; custom types
// supply WithCodec (and optionally WithKey, which unlocks the paper's
// numeric heuristics). Cancellation is honoured between batches in both
// the run-generation and merge phases.
//
// # Run-generation policies
//
// Run generation itself is pluggable (WithPolicy): the paper's 2WRS,
// classic replacement selection, alternating up/down runs and quicksort
// batches sit behind one policy boundary, and the default "auto" policy
// probes the input's order statistics — inversion ratio, monotone run
// structure — to pick the generator the data favours, switching at run
// boundaries if the regime changes mid-stream. Stats.Policy and
// Stats.PolicySwitches report what ran; Policies lists the valid names,
// and Config.Validate rejects unknown ones outright. See DESIGN.md §9 for
// the cost model.
//
// # The operator layer
//
// Beyond producing a sorted stream, a Sorter answers the queries sorted
// runs make cheap, streaming the merged order through relational
// operators instead of materialising it:
//
//	s.Distinct(ctx, src, dst)                    // one element per equivalence class
//	s.GroupBy(ctx, src, sameGroup, reduce, dst)  // grouped aggregation
//	s.TopK(ctx, src, k, dst)                     // k smallest, ascending
//	s.BottomK(ctx, src, k, dst)                  // k largest, ascending
//	repro.MergeJoin(ctx, ls, lsrc, rs, rsrc, cmp, join, dst)
//
// TopK and BottomK with k within the memory budget never sort at all: a
// bounded heap tracks the selection threshold and nothing spills
// (OpStats.Sorted reports which path ran). See DESIGN.md §"Operator
// layer" for the data flow and cost model.
//
// # Selection
//
// Order-statistic queries answer without sorting. Select partitions in
// memory with a dualheap and returns the exact k-th smallest element;
// Quantiles extracts the values at an arbitrary set of quantiles in one
// pass; ApproxSelect runs soft-heap selection whose rank error is bounded
// by a corruption budget eps:
//
//	v, st, err := s.Select(ctx, src, k)              // exact k-th smallest (1-based)
//	vs, st, err := s.Quantiles(ctx, src, []float64{0.5, 0.9, 0.99})
//	v, st, err := s.ApproxSelect(ctx, src, k, 0.01)  // true rank in [k, k+0.01n]
//
// Inputs larger than the memory budget spill through the usual run
// machinery, but the answer is read off the final merge without
// materialising it — a median query reads back about half the spilled
// bytes. SelectStats reports the path taken, dualheap exchanges and, for
// the approximate variant, the rank-error bound. See DESIGN.md
// §"Selection subsystem".
//
// # Spill storage
//
// How runs reach temporary storage is pluggable too (WithStorage,
// WithCompression, WithSpillMemory). The default is the paper's raw
// layout; any named compression ("none", "flate", "gzip") frames every
// spilled block with a CRC32 checksum — corrupted spill data then fails
// the merge with a checksum error instead of producing silently wrong
// output — and the compressed modes shrink the bytes that actually move.
// A byte budget keeps runs in an in-memory tier that overflows to the
// temp directory mid-write when it fills. Stats.IO accounts for every
// spilled byte, raw versus stored, along with block counts, overflow
// migrations and verification failures. See DESIGN.md §10.
//
// # The classic record API
//
// The original fixed-record API remains as thin wrappers over
// Sorter[Record]:
//
//	cfg := repro.DefaultConfig(1 << 20) // one million records of memory
//	stats, err := repro.Sort(src, dst, cfg)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package repro

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/gen"
	"repro/internal/manifest"
	"repro/internal/policy"
	"repro/internal/record"
	"repro/internal/storage"
)

// Record is the unit of the classic API: a 64-bit key ordered ascending and
// a 64-bit auxiliary payload carried along unchanged.
type Record = record.Record

// Reader yields records; it returns io.EOF at end of stream.
type Reader = record.Reader

// Writer consumes records.
type Writer = record.Writer

// Stats reports what a sort did: run counts, average run length, merge
// passes, per-phase timings, and the spill backend's I/O accounting
// (Stats.IO, an IOStats).
type Stats = extsort.Stats

// IOStats is the spill backend's byte-level I/O accounting, carried in
// Stats.IO: raw versus stored bytes moved (the gap is what compression
// saved), block counts, checksum verification failures, and the memory
// tier's residency and overflow counts.
type IOStats = extsort.IOStats

// Storage configures how runs spill to temporary files; see Config.Storage
// and WithStorage. The zero value is the library's historical raw layout.
type Storage = storage.Config

// Durable-sort sentinel errors, matched with errors.Is against failures of
// Sorter.Resume (and of durable Sort calls). See Config.Manifest.
var (
	// ErrNoManifest: the spill directory holds no manifest — there is no
	// durable state to resume. Sorter.Resume handles this itself by
	// starting fresh; the sentinel is for callers of the lower layers.
	ErrNoManifest = manifest.ErrNoManifest
	// ErrManifestMismatch: the manifest was written under a different
	// codec, compression or generation configuration than the resuming
	// sort's. Resuming would mix incompatible state, so nothing is reused.
	ErrManifestMismatch = manifest.ErrMismatch
	// ErrManifestCorrupt: the manifest's header is unreadable or from an
	// unknown format version. (Damage confined to the tail is not an
	// error: the intact prefix is resumed and the tail regenerated.)
	ErrManifestCorrupt = manifest.ErrCorrupt
	// ErrRunChecksum: a spill file referenced by the manifest is present
	// but its contents do not match the recorded checksum. The sort
	// refuses to resume rather than risk wrong output; discard the spill
	// directory and rerun.
	ErrRunChecksum = manifest.ErrChecksum
)

// Algorithm selects the run-generation strategy.
type Algorithm = extsort.Algorithm

// Run generation algorithms.
const (
	// TwoWayRS is two-way replacement selection, the paper's contribution.
	TwoWayRS = extsort.TwoWayRS
	// RS is classic replacement selection.
	RS = extsort.RS
	// LoadSortStore is the fill-sort-store baseline.
	LoadSortStore = extsort.LoadSortStore
)

// InputHeuristic decides which heap stores a record when both could.
type InputHeuristic = core.InputHeuristic

// Input heuristics (§4.2 of the paper).
const (
	InputRandom    = core.InRandom
	InputAlternate = core.InAlternate
	InputMean      = core.InMean
	InputMedian    = core.InMedian
	InputUseful    = core.InUseful
	InputBalancing = core.InBalancing
)

// OutputHeuristic decides which heap releases the next record.
type OutputHeuristic = core.OutputHeuristic

// Output heuristics (§4.2 of the paper).
const (
	OutputRandom      = core.OutRandom
	OutputAlternate   = core.OutAlternate
	OutputUseful      = core.OutUseful
	OutputBalancing   = core.OutBalancing
	OutputMinDistance = core.OutMinDistance
)

// BufferSetup selects which auxiliary 2WRS buffers exist.
type BufferSetup = core.BufferSetup

// Buffer setups.
const (
	InputBufferOnly  = core.InputBufferOnly
	BothBuffers      = core.BothBuffers
	VictimBufferOnly = core.VictimBufferOnly
)

// Config controls a sort. The zero value is not valid; start from
// DefaultConfig or build a Sorter through New with options.
type Config struct {
	// Algorithm is the run-generation strategy (default TwoWayRS). It is
	// consulted only while Policy is empty.
	Algorithm Algorithm
	// Policy, when non-empty, selects run generation through the adaptive
	// policy engine instead of Algorithm. Valid names are listed by
	// Policies(): "2wrs", "rs", "alternating" (alias "alt"), "quick" and
	// "auto" — the adaptive policy that probes the input's order structure
	// and may switch generators at run boundaries mid-stream. Unknown
	// names are rejected by Validate, never silently defaulted. The
	// generic constructor New defaults to "auto"; the classic wrappers and
	// hand-built configs default to the empty string, preserving their
	// historical Algorithm-driven behaviour.
	Policy string
	// MemoryRecords is the memory budget in records for both phases.
	MemoryRecords int
	// FanIn is the merge fan-in (the paper's optimum is 10).
	FanIn int
	// Setup selects which auxiliary 2WRS buffers exist. Setup,
	// BufferFraction, Input and Output tune 2WRS and are ignored by the
	// other generators; the defaults are the paper's recommended
	// configuration (§5.3): both buffers, 2%, Mean input, Random output.
	Setup BufferSetup
	// BufferFraction is the fraction of memory dedicated to the auxiliary
	// 2WRS buffers, in (0, 0.5].
	BufferFraction float64
	// Input is the 2WRS insertion heuristic (§4.2).
	Input InputHeuristic
	// Output is the 2WRS release heuristic (§4.2).
	Output OutputHeuristic
	// Seed drives the randomised heuristics.
	Seed int64
	// TempDir, when non-empty, stores temporary runs in that directory on
	// the real file system; otherwise runs live in process memory (fine up
	// to a few GB and fastest for tests).
	TempDir string
	// Parallelism bounds the sort's concurrency: above 1, run spilling
	// overlaps file I/O on background writer goroutines and independent
	// intermediate merges run on a worker pool of this size. 1 forces the
	// fully sequential behaviour; 0 (the default) uses GOMAXPROCS. Output
	// and on-disk run format are identical at every setting.
	Parallelism int
	// Shards, when above 1, turns the sort into a range-partitioned
	// distribution sort: a memory-sized prefix of the input is sampled for
	// Shards-1 quantile splitters, the input is partitioned into that many
	// non-overlapping key ranges, each range sorts concurrently on its own
	// goroutine with its own run files and share of the memory budget, and
	// the shard outputs are concatenated in splitter order — no final
	// cross-shard merge. The sorted output is byte-identical to the
	// single-stream sort whenever comparator-equal elements are bitwise
	// identical. 0 and 1 run the ordinary single-stream sort. Durable
	// sharded sorts (Manifest/Resume) keep one manifest per shard and
	// resume only the unfinished shards. See DESIGN.md §15.
	Shards int
	// Storage selects the spill backend. The zero value stores runs in the
	// historical raw layout. Setting Compression to "none", "flate" or
	// "gzip" frames every spilled page in a self-describing block with a
	// CRC32 checksum (compressed for the latter two), so corrupted spill
	// data surfaces as a checksum error instead of silently wrong output.
	// A positive MemoryBudgetBytes keeps runs in an in-memory tier of at
	// most that many bytes, overflowing to TempDir (or the in-process FS)
	// when the budget is exceeded. Stats.IO reports what the backend did.
	Storage Storage
	// Trace, when non-nil, records phase, run, merge and spill spans plus
	// policy-switch events for every sort run under this configuration;
	// export with Tracer.WriteChromeTrace or Tracer.WriteSpansJSONL. Nil
	// (the default) disables tracing at zero cost. See WithTracer.
	Trace *Tracer
	// Metrics, when non-nil, keeps the registry's counters, gauges and
	// histograms current across every sort run under this configuration;
	// expose with Metrics.WritePrometheus or Metrics.Handler. Nil (the
	// default) disables metrics at zero cost. See WithMetrics.
	Metrics *Metrics
	// Progress, when non-nil, emits periodic progress lines (phase,
	// records processed, rate, ETA when the input size is known) to
	// Progress.W every Progress.Interval. See WithProgress.
	Progress *ProgressConfig
	// Manifest makes run generation durable: every completed run is
	// recorded in a CRC-guarded manifest file alongside the spill files,
	// so a sort killed mid-generation can be picked up with Sorter.Resume
	// (or the -resume CLI flag) instead of starting over. Durable sorts
	// restart the run generator at every run boundary, making the run
	// sequence a pure function of input and configuration; the resumed
	// output is byte-identical to an uninterrupted sort. Requires a
	// deterministic policy — Validate rejects the adaptive "auto" policy,
	// whose probing decisions are not replayable. See DESIGN.md §14.
	Manifest bool
	// Resume makes every sort under this configuration first look for a
	// durable manifest left by an interrupted earlier sort and continue
	// from its last committed run boundary (the source must re-serve the
	// original input from the start). With no manifest present the sort
	// simply runs fresh. Resume implies Manifest. Most callers use
	// Sorter.Resume instead; the config flag exists for the operator layer
	// (Distinct, TopK, …) and the classic wrappers, which have no separate
	// resume entry point.
	Resume bool
}

// DefaultConfig returns the paper's recommended configuration with the
// given memory budget in records.
func DefaultConfig(memoryRecords int) Config {
	return Config{
		Algorithm:      TwoWayRS,
		MemoryRecords:  memoryRecords,
		FanIn:          10,
		Setup:          BothBuffers,
		BufferFraction: 0.02,
		Input:          InputMean,
		Output:         OutputRandom,
	}
}

// Validate reports a descriptive error for configurations that cannot
// sort correctly or would silently misbehave.
func (c Config) Validate() error {
	switch c.Algorithm {
	case TwoWayRS, RS, LoadSortStore:
	default:
		return fmt.Errorf("repro: unknown algorithm %v", c.Algorithm)
	}
	if c.Policy != "" {
		if _, err := policy.Parse(c.Policy); err != nil {
			return fmt.Errorf("repro: unknown policy %q (valid policies: %s)", c.Policy, strings.Join(Policies(), ", "))
		}
	}
	if c.MemoryRecords < 3 {
		return fmt.Errorf("repro: memory budget of %d records is too small (need ≥ 3)", c.MemoryRecords)
	}
	if c.FanIn < 2 {
		return fmt.Errorf("repro: merge fan-in must be at least 2, got %d", c.FanIn)
	}
	if c.BufferFraction <= 0 || c.BufferFraction > 0.5 {
		return fmt.Errorf("repro: buffer fraction %v outside (0, 0.5]", c.BufferFraction)
	}
	switch c.Setup {
	case InputBufferOnly, BothBuffers, VictimBufferOnly:
	default:
		return fmt.Errorf("repro: unknown buffer setup %v", c.Setup)
	}
	switch c.Input {
	case InputRandom, InputAlternate, InputMean, InputMedian, InputUseful, InputBalancing, core.InTopOnly:
	default:
		return fmt.Errorf("repro: unknown input heuristic %v", c.Input)
	}
	switch c.Output {
	case OutputRandom, OutputAlternate, OutputUseful, OutputBalancing, OutputMinDistance:
	default:
		return fmt.Errorf("repro: unknown output heuristic %v", c.Output)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("repro: parallelism must be non-negative, got %d", c.Parallelism)
	}
	if c.Shards < 0 {
		return fmt.Errorf("repro: shards must be non-negative, got %d", c.Shards)
	}
	if _, err := storage.ParseCompression(c.Storage.Compression); err != nil {
		return fmt.Errorf("repro: unknown compression %q (valid: %s)", c.Storage.Compression, strings.Join(Compressions(), ", "))
	}
	if c.Storage.MemoryBudgetBytes < 0 {
		return fmt.Errorf("repro: storage memory budget must be non-negative, got %d", c.Storage.MemoryBudgetBytes)
	}
	if c.Manifest || c.Resume {
		if kind, err := policy.Parse(c.Policy); err == nil && kind == policy.Auto {
			return fmt.Errorf("repro: durable manifests require a deterministic policy; %q probes the input and is not replayable (pick one of: %s)",
				c.Policy, strings.Join(deterministicPolicies(), ", "))
		}
	}
	return nil
}

// deterministicPolicies lists the policy names valid under Config.Manifest.
func deterministicPolicies() []string {
	var out []string
	for _, name := range Policies() {
		if kind, err := policy.Parse(name); err == nil && kind != policy.Auto {
			out = append(out, name)
		}
	}
	return out
}

// Compressions lists the valid spill compression names accepted by
// Config.Storage and WithCompression, in presentation order.
func Compressions() []string { return storage.Compressions() }

// Policies lists the valid run-generation policy names accepted by
// Config.Policy and WithPolicy, in presentation order.
func Policies() []string { return policy.Names() }

// toInternal converts the public Config to the internal driver config.
func (c Config) toInternal() extsort.Config {
	kind := policy.None
	if c.Policy != "" {
		// Validate has already vetted the name; an unparsable one can only
		// reach here through a caller that skipped validation, and then the
		// zero Kind falls back to the Algorithm field.
		kind, _ = policy.Parse(c.Policy)
	}
	return extsort.Config{
		Algorithm:   c.Algorithm,
		Policy:      kind,
		Memory:      c.MemoryRecords,
		FanIn:       c.FanIn,
		Parallelism: c.Parallelism,
		Storage:     c.Storage,
		Trace:       c.Trace,
		Metrics:     c.Metrics,
		Progress:    c.Progress,
		Manifest:    c.Manifest || c.Resume,
		Resume:      c.Resume,
		TWRS: core.Config{
			Memory:     c.MemoryRecords,
			Setup:      c.Setup,
			BufferFrac: c.BufferFraction,
			Input:      c.Input,
			Output:     c.Output,
			Seed:       c.Seed,
		},
	}
}

// withLegacyDefaults fills zero-valued knobs that the pre-generic driver
// used to default internally, so hand-built legacy configs keep working
// through the classic wrappers: an unset FanIn becomes the paper's optimum
// and an unset BufferFraction the recommended 2%.
func (c Config) withLegacyDefaults() Config {
	if c.FanIn == 0 {
		c.FanIn = 10
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.02
	}
	return c
}

// recordSorter builds the Sorter[Record] behind the classic API.
func recordSorter(cfg Config) (*Sorter[Record], error) {
	return New(record.Less,
		WithConfig(cfg.withLegacyDefaults()),
		WithCodec(RecordCodec()),
		WithKey(record.Key))
}

// Sort reads every record from src, sorts them externally within the
// configured memory budget, and writes the ascending result to dst. It is
// a thin wrapper over Sorter[Record]; use New for other element types or
// for context cancellation.
func Sort(src Reader, dst Writer, cfg Config) (Stats, error) {
	s, err := recordSorter(cfg)
	if err != nil {
		return Stats{}, err
	}
	return s.Sort(context.Background(), src, dst)
}

// SortSlice sorts a slice through the external-sort machinery and returns a
// new sorted slice. It is a convenience for small inputs and examples.
func SortSlice(recs []Record, cfg Config) ([]Record, Stats, error) {
	s, err := recordSorter(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return s.SortSlice(context.Background(), recs)
}

// SortFile sorts a binary record file (16-byte little-endian records as
// written by WriteFile or cmd/gendata) into a new file.
func SortFile(inPath, outPath string, cfg Config) (Stats, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return Stats{}, err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return Stats{}, err
	}
	w := bufio.NewWriterSize(out, 1<<20)
	stats, err := Sort(record.NewByteReader(bufio.NewReaderSize(in, 1<<20)), record.NewByteWriter(w), cfg)
	if err != nil {
		out.Close()
		return stats, err
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return stats, err
	}
	return stats, out.Close()
}

// WriteFile writes records to a binary record file readable by SortFile.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := record.WriteAll(record.NewByteWriter(w), recs); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a whole binary record file into memory.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadAll(record.NewByteReader(bufio.NewReaderSize(f, 1<<20)))
}

// DatasetKind identifies one of the paper's six input distributions.
type DatasetKind = gen.Kind

// The six distributions of Figure 5.1 of the thesis.
const (
	DatasetSorted          = gen.Sorted
	DatasetReverseSorted   = gen.ReverseSorted
	DatasetAlternating     = gen.Alternating
	DatasetRandom          = gen.Random
	DatasetMixedBalanced   = gen.MixedBalanced
	DatasetMixedImbalanced = gen.MixedImbalanced
)

// Dataset generates n records of one of the paper's benchmark
// distributions, deterministically for a given seed.
func Dataset(kind DatasetKind, n int, seed int64) []Record {
	return gen.Generate(gen.Config{Kind: kind, N: n, Seed: seed, Noise: 1000})
}

// DatasetReader streams one of the paper's benchmark distributions without
// materialising it, for inputs larger than memory.
func DatasetReader(kind DatasetKind, n int, seed int64) Reader {
	return gen.New(gen.Config{Kind: kind, N: n, Seed: seed, Noise: 1000})
}
