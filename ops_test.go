package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/record"
)

// The operator verification suite: every operator, on every one of the
// paper's six input distributions, against a plain in-memory reference —
// once over the fixed-width Record codec and once over the variable-width
// string codec. The comparators are total orders, so the expected output is
// fully determined.

// opTestN is the per-distribution input size (dup-heavy by construction).
func opTestN(t *testing.T) int {
	if testing.Short() {
		return 1500
	}
	return 4000
}

// totalRecLess orders records by (key, aux): a total order, unlike the
// classic key-only record.Less, so duplicate elimination and top-k have
// deterministic expected outputs.
func totalRecLess(a, b Record) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Aux < b.Aux
}

// opRecords folds a gen distribution into a duplicate-heavy record set: the
// distribution's shape drives the arrival order, and the modulus guarantees
// every operator has real work (duplicates, multi-member groups).
func opRecords(kind gen.Kind, n int, seed int64) []Record {
	raw := gen.Generate(gen.Config{Kind: kind, N: n, Seed: seed, Noise: 1000})
	recs := make([]Record, n)
	for i, r := range raw {
		recs[i] = Record{Key: ((r.Key % 499) + 499) % 499, Aux: uint64(i % 7)}
	}
	return recs
}

// opStrings maps the same construction onto variable-width strings.
func opStrings(kind gen.Kind, n int, seed int64) []string {
	recs := opRecords(kind, n, seed)
	strs := make([]string, n)
	for i, r := range recs {
		strs[i] = fmt.Sprintf("k%06d-%d", r.Key, r.Aux)
	}
	return strs
}

func sortedRecs(in []Record) []Record {
	s := append([]Record(nil), in...)
	sort.Slice(s, func(i, j int) bool { return totalRecLess(s[i], s[j]) })
	return s
}

func recSorter(t *testing.T, opts ...Option) *Sorter[Record] {
	t.Helper()
	base := []Option{WithMemoryRecords(256), WithCodec(RecordCodec()), WithKey(record.Key), WithSeed(9)}
	s, err := New(totalRecLess, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func strSorter(t *testing.T, opts ...Option) *Sorter[string] {
	t.Helper()
	base := []Option{WithMemoryRecords(256), WithSeed(9)}
	s, err := New(func(a, b string) bool { return a < b }, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func requireEqual[T comparable](t *testing.T, label string, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d elements, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestDistinctMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			// Fixed-width records.
			in := opRecords(kind, n, 21)
			var want []Record
			for i, v := range sortedRecs(in) {
				if i == 0 || v != want[len(want)-1] {
					want = append(want, v)
				}
			}
			var out sliceSink[Record]
			st, err := recSorter(t).Distinct(context.Background(), newSliceSource(in), &out)
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "records", out.vals, want)
			if !st.Sorted || st.In != int64(n) || st.Out != int64(len(want)) || st.Sort.Runs < 2 {
				t.Fatalf("stats %+v: want a genuine external sorted distinct", st)
			}

			// Variable-width strings.
			sin := opStrings(kind, n, 22)
			swant := append([]string(nil), sin...)
			sort.Strings(swant)
			uniq := swant[:0]
			for i, v := range swant {
				if i == 0 || v != uniq[len(uniq)-1] {
					uniq = append(uniq, v)
				}
			}
			var sout sliceSink[string]
			if _, err := strSorter(t).Distinct(context.Background(), newSliceSource(sin), &sout); err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "strings", sout.vals, uniq)
		})
	}
}

func TestGroupByMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	sameKey := func(a, b Record) bool { return a.Key == b.Key }
	sumAux := func(acc, v Record) Record { return Record{Key: acc.Key, Aux: acc.Aux + v.Aux} }
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			in := opRecords(kind, n, 31)
			// Reference: fold each key class in sorted order (which is how the
			// merged stream delivers it).
			var want []Record
			for _, v := range sortedRecs(in) {
				if len(want) > 0 && want[len(want)-1].Key == v.Key {
					want[len(want)-1].Aux += v.Aux
					continue
				}
				want = append(want, v)
			}
			var out sliceSink[Record]
			st, err := recSorter(t).GroupBy(context.Background(), newSliceSource(in), sameKey, sumAux, &out)
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "records", out.vals, want)
			if st.Groups != int64(len(want)) || st.Out != st.Groups || st.In != int64(n) {
				t.Fatalf("stats %+v: want %d groups", st, len(want))
			}

			// Variable-width strings: group by the key prefix, reduce by
			// appending each member's trailing digit — order-sensitive on
			// purpose, pinned by the deterministic merged order.
			sin := opStrings(kind, n, 32)
			sSame := func(a, b string) bool { return a[:7] == b[:7] }
			sReduce := func(acc, v string) string { return acc + v[len(v)-1:] }
			ssorted := append([]string(nil), sin...)
			sort.Strings(ssorted)
			var swant []string
			for _, v := range ssorted {
				if len(swant) > 0 && sSame(swant[len(swant)-1], v) {
					swant[len(swant)-1] += v[len(v)-1:]
					continue
				}
				swant = append(swant, v)
			}
			var sout sliceSink[string]
			if _, err := strSorter(t).GroupBy(context.Background(), newSliceSource(sin), sSame, sReduce, &sout); err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "strings", sout.vals, swant)
		})
	}
}

func TestTopKMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			in := opRecords(kind, n, 41)
			sorted := sortedRecs(in)
			for _, k := range []int{1, 37, 200} {
				var out sliceSink[Record]
				st, err := recSorter(t).TopK(context.Background(), newSliceSource(in), k, &out)
				if err != nil {
					t.Fatal(err)
				}
				requireEqual(t, fmt.Sprintf("records k=%d", k), out.vals, sorted[:k])
				// k ≪ N and k ≤ memory: the bounded selection path must have
				// engaged — no sort, no runs, no spill.
				if st.Sorted || st.Sort.Runs != 0 || st.Sort.MergeOps != 0 {
					t.Fatalf("k=%d: stats %+v: bounded top-k ran a full sort", k, st)
				}
				if st.In != int64(n) || st.Out != int64(k) {
					t.Fatalf("k=%d: stats %+v", k, st)
				}
			}

			sin := opStrings(kind, n, 42)
			ssorted := append([]string(nil), sin...)
			sort.Strings(ssorted)
			var sout sliceSink[string]
			if _, err := strSorter(t).TopK(context.Background(), newSliceSource(sin), 50, &sout); err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "strings k=50", sout.vals, ssorted[:50])
		})
	}
}

// TestTopKExternalFallback forces k beyond the memory budget: the operator
// must fall back to run generation, stream the merged order, and still cut
// off after exactly k elements.
func TestTopKExternalFallback(t *testing.T) {
	n := opTestN(t)
	in := opRecords(gen.Random, n, 43)
	k := 600 // > the sorter's 256-record budget
	var out sliceSink[Record]
	st, err := recSorter(t).TopK(context.Background(), newSliceSource(in), k, &out)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "external top-k", out.vals, sortedRecs(in)[:k])
	if !st.Sorted || st.Sort.Runs < 2 {
		t.Fatalf("stats %+v: expected the external path", st)
	}
	if st.Out != int64(k) {
		t.Fatalf("emitted %d, want %d", st.Out, k)
	}
}

func TestMergeJoinMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	type row struct {
		Key    int64
		LA, RA uint64
	}
	cmp := func(l, r Record) int {
		switch {
		case l.Key < r.Key:
			return -1
		case l.Key > r.Key:
			return 1
		}
		return 0
	}
	join := func(l, r Record) row { return row{Key: l.Key, LA: l.Aux, RA: r.Aux} }
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			// Fold the key space harder so every key class is small enough for
			// the quadratic reference but still many-to-many.
			shrink := func(recs []Record) []Record {
				out := make([]Record, len(recs))
				for i, r := range recs {
					out[i] = Record{Key: r.Key % 113, Aux: r.Aux}
				}
				return out
			}
			left := shrink(opRecords(kind, n/2, 51))
			right := shrink(opRecords(kind, n/2, 52))

			lsorted, rsorted := sortedRecs(left), sortedRecs(right)
			var want []row
			for _, l := range lsorted {
				for _, r := range rsorted {
					if l.Key == r.Key {
						want = append(want, join(l, r))
					}
				}
			}

			var out sliceSink[row]
			st, err := MergeJoin(context.Background(),
				recSorter(t), newSliceSource(left),
				recSorter(t), newSliceSource(right),
				cmp, join, &out)
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "join", out.vals, want)
			if st.Out != int64(len(want)) || st.LeftIn != int64(len(left)) || st.RightIn != int64(len(right)) {
				t.Fatalf("stats %+v: want %d rows", st, len(want))
			}
			if st.Left.Runs < 2 || st.Right.Runs < 2 {
				t.Fatalf("stats %+v: both sides should have spilled runs", st)
			}
		})
	}
}

// TestMergeJoinSharedTempDir pins the file namespacing: both sides of a
// join sorting into one real directory must not collide.
func TestMergeJoinSharedTempDir(t *testing.T) {
	dir := t.TempDir()
	n := 3000
	left := opRecords(gen.MixedBalanced, n, 61)
	right := opRecords(gen.Alternating, n, 62)
	cmp := func(l, r Record) int {
		switch {
		case l.Key < r.Key:
			return -1
		case l.Key > r.Key:
			return 1
		}
		return 0
	}
	var out sliceSink[int64]
	st, err := MergeJoin(context.Background(),
		recSorter(t, WithTempDir(dir)), newSliceSource(left),
		recSorter(t, WithTempDir(dir)), newSliceSource(right),
		cmp, func(l, r Record) int64 { return l.Key }, &out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Out == 0 {
		t.Fatalf("stats %+v: expected matches", st)
	}
}

func TestOperatorContextCancellation(t *testing.T) {
	// Distinct over an endless source can only terminate via the context.
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(func(a, b int64) bool { return a < b }, WithMemoryRecords(128))
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	src := sourceFunc[int64](func() (int64, error) {
		reads++
		if reads == 8000 {
			cancel()
		}
		return int64(reads % 321), nil
	})
	var out discardSink[int64]
	if _, err := s.Distinct(ctx, src, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("Distinct returned %v, want context.Canceled", err)
	}
	if reads > 8000+2048 {
		t.Fatalf("source read %d times after cancellation", reads)
	}

	// TopK's bounded path polls the same cadence.
	ctx2, cancel2 := context.WithCancel(context.Background())
	reads = 0
	src2 := sourceFunc[int64](func() (int64, error) {
		reads++
		if reads == 5000 {
			cancel2()
		}
		return int64(reads % 77), nil
	})
	if _, err := s.TopK(ctx2, src2, 10, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopK returned %v, want context.Canceled", err)
	}
	if reads > 5000+2048 {
		t.Fatalf("TopK read %d times after cancellation", reads)
	}
}

func TestOperatorArgumentValidation(t *testing.T) {
	s, err := New(func(a, b int64) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	var out sliceSink[int64]
	if _, err := s.GroupBy(context.Background(), newSliceSource([]int64{1}), nil, nil, &out); err == nil {
		t.Fatal("GroupBy without reduce should be rejected")
	}
	if _, err := s.TopK(context.Background(), newSliceSource([]int64{1}), -3, &out); err == nil {
		t.Fatal("negative k should be rejected")
	}
	if _, err := MergeJoin[int64, int64, int64](context.Background(), nil, nil, nil, nil, nil, nil, &out); err == nil {
		t.Fatal("MergeJoin without sorters should be rejected")
	}
	var zero sliceSink[int64]
	st, err := s.TopK(context.Background(), newSliceSource([]int64{3, 1, 2}), 0, &zero)
	if err != nil || st.Out != 0 || len(zero.vals) != 0 {
		t.Fatalf("k=0: %+v, %v", st, err)
	}
}

// sliceSource / sliceSink are minimal element-at-a-time endpoints for the
// operator tests (sourceFunc/discardSink live in sorter_test.go).
type sliceSource[T any] struct {
	vals []T
	pos  int
}

func newSliceSource[T any](vals []T) *sliceSource[T] { return &sliceSource[T]{vals: vals} }

func (s *sliceSource[T]) Read() (T, error) {
	if s.pos >= len(s.vals) {
		var zero T
		return zero, io.EOF
	}
	v := s.vals[s.pos]
	s.pos++
	return v, nil
}

type sliceSink[T any] struct{ vals []T }

func (s *sliceSink[T]) Write(v T) error {
	s.vals = append(s.vals, v)
	return nil
}
