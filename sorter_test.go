package repro

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
)

// small memory budgets so every property test spills multiple runs to the
// (in-memory) file system and exercises both phases.
const testMemory = 256

var testAlgorithms = []Algorithm{TwoWayRS, RS, LoadSortStore}

// checkSortedPermutation verifies out is sorted by less and is a
// permutation of in.
func checkSortedPermutation[T comparable](t *testing.T, in, out []T, less func(a, b T) bool) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("output has %d elements, input %d", len(out), len(in))
	}
	for i := 1; i < len(out); i++ {
		if less(out[i], out[i-1]) {
			t.Fatalf("output not sorted at %d: %v after %v", i, out[i], out[i-1])
		}
	}
	counts := make(map[T]int, len(in))
	for _, v := range in {
		counts[v]++
	}
	for _, v := range out {
		counts[v]--
	}
	for v, n := range counts {
		if n != 0 {
			t.Fatalf("element %v count off by %d", v, n)
		}
	}
}

func TestSorterInt64AllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := make([]int64, 20000)
	for i := range in {
		in[i] = rng.Int63n(1 << 40)
	}
	less := func(a, b int64) bool { return a < b }
	for _, alg := range testAlgorithms {
		s, err := New(less, WithAlgorithm(alg), WithMemoryRecords(testMemory), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.SortSlice(context.Background(), in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkSortedPermutation(t, in, out, less)
		if stats.Records != int64(len(in)) || stats.Runs < 2 {
			t.Fatalf("%v: stats = %+v, want a genuine external sort", alg, stats)
		}
	}
}

func TestSorterStringAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := make([]string, 20000)
	for i := range in {
		l := 1 + rng.Intn(40)
		var sb strings.Builder
		for j := 0; j < l; j++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		in[i] = sb.String()
	}
	less := func(a, b string) bool { return a < b }
	for _, alg := range testAlgorithms {
		s, err := New(less, WithAlgorithm(alg), WithMemoryRecords(testMemory), WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.SortSlice(context.Background(), in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkSortedPermutation(t, in, out, less)
		if stats.Runs < 2 {
			t.Fatalf("%v: only %d runs; memory budget did not force spilling", alg, stats.Runs)
		}
	}
}

// pair is a struct element with a composite (string, int64) key, exercising
// a custom codec and comparator end to end.
type pair struct {
	Name string
	N    int64
}

func pairLess(a, b pair) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.N < b.N
}

// pairCodec stores a pair as a length-prefixed name followed by a fixed
// 8-byte count.
type pairCodec struct{}

func (pairCodec) Append(buf []byte, v pair) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.Name)))
	buf = append(buf, v.Name...)
	return binary.LittleEndian.AppendUint64(buf, uint64(v.N))
}

func (pairCodec) Decode(buf []byte) (pair, int, error) {
	l, p := binary.Uvarint(buf)
	if p <= 0 || len(buf) < p+int(l)+8 {
		return pair{}, 0, ErrShortCodec
	}
	name := string(buf[p : p+int(l)])
	n := int64(binary.LittleEndian.Uint64(buf[p+int(l):]))
	return pair{Name: name, N: n}, p + int(l) + 8, nil
}

func (pairCodec) FixedSize() int { return 0 }

func TestSorterStructAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := make([]pair, 15000)
	for i := range in {
		in[i] = pair{
			Name: fmt.Sprintf("user-%03d", rng.Intn(500)),
			N:    rng.Int63n(1000),
		}
	}
	for _, alg := range testAlgorithms {
		s, err := New(pairLess,
			WithAlgorithm(alg),
			WithMemoryRecords(testMemory),
			WithCodec[pair](pairCodec{}),
			WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.SortSlice(context.Background(), in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkSortedPermutation(t, in, out, pairLess)
		if stats.Runs < 2 {
			t.Fatalf("%v: only %d runs", alg, stats.Runs)
		}
	}
}

func TestSorterHeuristicsAndSetupsOnStrings(t *testing.T) {
	// The full 2WRS heuristic surface over a comparator-only type: the
	// numeric heuristics must fall back cleanly and stay correct.
	rng := rand.New(rand.NewSource(14))
	in := make([]string, 4000)
	for i := range in {
		in[i] = fmt.Sprintf("%06x", rng.Intn(1<<22))
	}
	less := func(a, b string) bool { return a < b }
	for _, setup := range []BufferSetup{InputBufferOnly, BothBuffers, VictimBufferOnly} {
		for _, in2 := range []InputHeuristic{InputRandom, InputAlternate, InputMean, InputMedian, InputUseful, InputBalancing} {
			for _, out2 := range []OutputHeuristic{OutputRandom, OutputAlternate, OutputUseful, OutputBalancing, OutputMinDistance} {
				s, err := New(less,
					WithMemoryRecords(128),
					WithBufferSetup(setup),
					WithBufferFraction(0.1),
					WithHeuristics(in2, out2),
					WithSeed(4))
				if err != nil {
					t.Fatal(err)
				}
				out, _, err := s.SortSlice(context.Background(), in)
				if err != nil {
					t.Fatalf("setup=%v in=%v out=%v: %v", setup, in2, out2, err)
				}
				checkSortedPermutation(t, in, out, less)
			}
		}
	}
}

func TestSorterContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	less := func(a, b int64) bool { return a < b }
	s, err := New(less, WithMemoryRecords(128))
	if err != nil {
		t.Fatal(err)
	}
	// An endless source; the sort can only terminate through cancellation.
	n := 0
	src := sourceFunc[int64](func() (int64, error) {
		n++
		if n == 10000 {
			cancel()
		}
		return int64(n % 977), nil
	})
	var out discardSink[int64]
	_, err = s.Sort(ctx, src, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sort returned %v, want context.Canceled", err)
	}
	if n > 10000+2048 {
		t.Fatalf("source read %d times after cancellation; batch checks not honoured", n)
	}
}

func TestSorterAlreadyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(func(a, b int64) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SortSlice(ctx, []int64{3, 1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type sourceFunc[T any] func() (T, error)

func (f sourceFunc[T]) Read() (T, error) { return f() }

type discardSink[T any] struct{ n int64 }

func (d *discardSink[T]) Write(T) error { d.n++; return nil }

func TestSorterTempDirStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	in := make([]string, 5000)
	for i := range in {
		in[i] = fmt.Sprintf("%08d-%d", rng.Intn(1<<20), i)
	}
	less := func(a, b string) bool { return a < b }
	s, err := New(less, WithMemoryRecords(200), WithTempDir(t.TempDir()+"/runs"))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := s.SortSlice(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	checkSortedPermutation(t, in, out, less)
}

func TestNewRejectsBadInputs(t *testing.T) {
	lessInt := func(a, b int64) bool { return a < b }
	if _, err := New[int64](nil); err == nil {
		t.Fatal("nil comparator should be rejected")
	}
	if _, err := New(func(a, b struct{ X int }) bool { return a.X < b.X }); err == nil {
		t.Fatal("unknown element type without WithCodec should be rejected")
	}
	if _, err := New(lessInt, WithCodec(StringCodec())); err == nil {
		t.Fatal("codec/element type mismatch should be rejected")
	}
	if _, err := New(lessInt, WithKey(func(s string) float64 { return 0 })); err == nil {
		t.Fatal("key/element type mismatch should be rejected")
	}
	if _, err := New(lessInt, WithElementBytes(-4)); err == nil {
		t.Fatal("negative element bytes should be rejected")
	}
}

func TestConfigValidateTable(t *testing.T) {
	valid := DefaultConfig(1000)
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"default ok", func(c *Config) {}, ""},
		{"zero value invalid", func(c *Config) { *c = Config{} }, "memory"},
		{"negative memory", func(c *Config) { c.MemoryRecords = -5 }, "memory"},
		{"tiny memory", func(c *Config) { c.MemoryRecords = 2 }, "too small"},
		{"fan-in one", func(c *Config) { c.FanIn = 1 }, "fan-in"},
		{"fan-in zero", func(c *Config) { c.FanIn = 0 }, "fan-in"},
		{"fraction zero", func(c *Config) { c.BufferFraction = 0 }, "fraction"},
		{"fraction negative", func(c *Config) { c.BufferFraction = -0.1 }, "fraction"},
		{"fraction too large", func(c *Config) { c.BufferFraction = 0.6 }, "fraction"},
		{"fraction at bound ok", func(c *Config) { c.BufferFraction = 0.5 }, ""},
		{"unknown algorithm", func(c *Config) { c.Algorithm = Algorithm(42) }, "algorithm"},
		{"unknown setup", func(c *Config) { c.Setup = BufferSetup(9) }, "setup"},
		{"unknown input heuristic", func(c *Config) { c.Input = InputHeuristic(99) }, "input heuristic"},
		{"unknown output heuristic", func(c *Config) { c.Output = OutputHeuristic(99) }, "output heuristic"},
		{"unknown compression", func(c *Config) { c.Storage.Compression = "zstd" }, "compression"},
		{"compression flate ok", func(c *Config) { c.Storage.Compression = "flate" }, ""},
		{"compression raw ok", func(c *Config) { c.Storage.Compression = "raw" }, ""},
		{"negative spill budget", func(c *Config) { c.Storage.MemoryBudgetBytes = -1 }, "budget"},
		{"spill budget ok", func(c *Config) { c.Storage.MemoryBudgetBytes = 1 << 20 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewValidatesConfig(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	if _, err := New(less, WithFanIn(1)); err == nil {
		t.Fatal("New should validate fan-in")
	}
	if _, err := New(less, WithMemoryRecords(0)); err == nil {
		t.Fatal("New should validate memory")
	}
	if _, err := New(less, WithBufferFraction(0.9)); err == nil {
		t.Fatal("New should validate buffer fraction")
	}
}

func TestLegacySortRejectsBadConfig(t *testing.T) {
	if _, _, err := SortSlice(nil, Config{}); err == nil {
		t.Fatal("zero config should be rejected")
	}
}

func TestLegacyHandBuiltConfigStillSorts(t *testing.T) {
	// Seed-era behavior: a hand-built config with zero FanIn/BufferFraction
	// relied on downstream defaulting. The wrappers must keep accepting it.
	recs := Dataset(DatasetRandom, 3000, 1)
	out, _, err := SortSlice(recs, Config{Algorithm: RS, MemoryRecords: 1000})
	if err != nil || len(out) != len(recs) {
		t.Fatalf("seed-era hand-built config: err=%v len=%d", err, len(out))
	}
}

// TestSorterLargeVariableStrings is a scaled-down version of
// examples/strings: many variable-length strings under a memory budget far
// smaller than the input, through the variable-width codec.
func TestSorterLargeVariableStrings(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 5000
	}
	rng := rand.New(rand.NewSource(16))
	in := make([]string, n)
	for i := range in {
		l := 4 + rng.Intn(60)
		b := make([]byte, l)
		for j := range b {
			b[j] = byte('!' + rng.Intn(90))
		}
		in[i] = string(b)
	}
	less := func(a, b string) bool { return a < b }
	s, err := New(less, WithMemoryRecords(512), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := s.SortSlice(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	checkSortedPermutation(t, in, out, less)
	if want := n / (4 * 512); stats.Runs < max(2, want) {
		t.Fatalf("expected ≥%d runs under the small budget, got %d", max(2, want), stats.Runs)
	}
}

// TestSorterStreamsMatchIO verifies the generic Sort streams from a Source
// to a Sink rather than materialising, by feeding it from a reader and
// checking EOF semantics.
func TestSorterSourceSinkStreaming(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	s, err := New(less, WithMemoryRecords(64), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	i := 0
	src := sourceFunc[int64](func() (int64, error) {
		if i == n {
			return 0, io.EOF
		}
		i++
		return int64((i * 7919) % 104729), nil
	})
	var got []int64
	dst := sinkFunc[int64](func(v int64) error { got = append(got, v); return nil })
	stats, err := s.Sort(context.Background(), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n || len(got) != n {
		t.Fatalf("streamed %d records, stats %+v", len(got), stats)
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("streamed output not sorted")
	}
}

type sinkFunc[T any] func(T) error

func (f sinkFunc[T]) Write(v T) error { return f(v) }

// TestSorterCancellationMidMerge interrupts a large multi-pass sort during
// the merge phase and requires the prompt context error plus a bounded
// amount of output after the cancellation — the batched cancellation
// checks must fire at the next batch boundary, not at the end of the sort.
func TestSorterCancellationMidMerge(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	less := func(a, b int64) bool { return a < b }
	// A small memory budget and fan-in force several intermediate merge
	// passes over ~100 runs.
	s, err := New(less, WithMemoryRecords(512), WithFanIn(4), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	i := 0
	src := sourceFunc[int64](func() (int64, error) {
		if i == n {
			return 0, io.EOF
		}
		i++
		return int64((i * 7919) % 104729), nil
	})
	// Cancel as soon as the first sorted element arrives: the sort is then
	// mid-merge, streaming the final pass.
	writes := 0
	dst := sinkFunc[int64](func(int64) error {
		if writes == 0 {
			cancel()
		}
		writes++
		return nil
	})
	_, err = s.Sort(ctx, src, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sort returned %v, want context.Canceled", err)
	}
	// The batch in flight when the context died may drain, nothing more.
	if writes > 2048 {
		t.Fatalf("%d elements written after cancellation; merge ignored the context", writes)
	}
}

// TestSorterCancelledBeforeMerge cancels exactly when run generation
// exhausts the source: the merge phase must abort without producing any
// output, proving the intermediate merge passes poll the context too.
func TestSorterCancelledBeforeMerge(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	less := func(a, b int64) bool { return a < b }
	s, err := New(less, WithMemoryRecords(512), WithFanIn(4), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	i := 0
	src := sourceFunc[int64](func() (int64, error) {
		if i == n {
			cancel() // run generation is done; the merge is about to start
			return 0, io.EOF
		}
		i++
		return int64((i * 104729) % 7919), nil
	})
	writes := 0
	dst := sinkFunc[int64](func(int64) error { writes++; return nil })
	_, err = s.Sort(ctx, src, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sort returned %v, want context.Canceled", err)
	}
	if writes != 0 {
		t.Fatalf("%d elements written although the context died before the merge", writes)
	}
}

// TestSorterStorageOptions drives the public storage options end to end: a
// variable-width sort through every framed backend over a real temp dir,
// with the tier budget forcing overflows, must produce the same output as
// the raw layout, account its I/O, and leave the directory empty.
func TestSorterStorageOptions(t *testing.T) {
	in := make([]string, 6000)
	for i := range in {
		in[i] = fmt.Sprintf("key-%05d", (i*7919)%6000)
	}
	var want []string
	for _, comp := range []string{"raw", "none", "flate", "gzip"} {
		t.Run(comp, func(t *testing.T) {
			dir := t.TempDir()
			s, err := New(func(a, b string) bool { return a < b },
				WithMemoryRecords(256),
				WithTempDir(dir),
				WithCompression(comp),
				WithSpillMemory(8<<10))
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := s.SortSlice(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if len(got) != len(want) {
				t.Fatalf("%s: %d elements, want %d", comp, len(got), len(want))
			} else {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: element %d = %q, want %q", comp, i, got[i], want[i])
					}
				}
			}
			if stats.IO.RawBytesWritten == 0 || stats.IO.VerifyFailures != 0 {
				t.Fatalf("%s: IO accounting %+v", comp, stats.IO)
			}
			if stats.IO.Overflows == 0 {
				t.Fatalf("%s: spill tier never overflowed to disk", comp)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 0 {
				t.Fatalf("%s: temp files left behind: %d entries", comp, len(ents))
			}
		})
	}
}

// TestWithSpillMemoryRejectsNegative pins the option-level validation.
func TestWithSpillMemoryRejectsNegative(t *testing.T) {
	if _, err := New(func(a, b int64) bool { return a < b }, WithSpillMemory(-1)); err == nil {
		t.Fatal("WithSpillMemory(-1) accepted")
	}
	if _, err := New(func(a, b int64) bool { return a < b }, WithCompression("zstd")); err == nil {
		t.Fatal("WithCompression(zstd) accepted")
	}
}
