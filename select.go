package repro

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/merge"
	"repro/internal/obs"
	sel "repro/internal/select"
	"repro/internal/stream"
)

// This file is the selection half of the operator layer: order statistics
// — the k-th smallest element, the values at a set of quantiles, the k
// largest elements — computed without a full sort whenever the input fits
// the memory budget, and through the run-generation machinery (but never a
// complete merge) when it does not. The in-memory algorithms live in
// internal/select: Sepesi's dualheap partition for exact selection, a
// multi-rank recursion for quantiles, and a Kaplan–Tarjan–Zwick soft heap
// for the approximate variant. See DESIGN.md §"Selection subsystem".

// SelectStats describes one selection execution.
type SelectStats struct {
	// Sort carries the underlying external sort's statistics. It is zero
	// when the selection ran entirely in memory (Sorted false).
	Sort Stats
	// In counts elements consumed from the source.
	In int64
	// Sorted reports whether the input spilled through run generation. The
	// in-memory paths leave it false: nothing was written anywhere.
	Sorted bool
	// Swaps counts dualheap root exchanges across all partitions — the
	// work the exchange loop did beyond building heaps. Zero on the spill
	// and approximate paths.
	Swaps int64
	// Corrupted counts the items left corrupted in the soft heap — held
	// under a soft key above their true key — when the selection finished
	// (ApproxSelect only). This is the quantity the soft-heap guarantee
	// bounds by ε·n at any moment.
	Corrupted int64
	// RankErrorBound is ⌈ε·n⌉, the guaranteed bound on how far the
	// approximate selection's rank may exceed k (ApproxSelect only).
	RankErrorBound int64
	// Elapsed is the end-to-end wall time of the selection call.
	Elapsed time.Duration
	// Phases breaks Elapsed into named per-phase wall durations in
	// execution order: "read" (buffering the input), then "partition"
	// (in-memory dualheap work) or — on the spill path — "generate" (run
	// generation and merge setup) and "select" (walking the merged
	// order). Their sum never exceeds Elapsed.
	Phases []PhaseStat
}

// parallelism resolves the configured concurrency bound for the in-memory
// selection algorithms: Config.Parallelism, with 0 meaning GOMAXPROCS.
func (s *Sorter[T]) parallelism() int {
	if s.cfg.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.cfg.Parallelism
}

// bufferWithin reads src into memory as long as the element count stays
// within limit. It returns the buffered prefix and whether the stream was
// exhausted within the limit; when it was not, the buffer holds exactly
// limit+1 elements and the source is positioned after them, ready for a
// chained replay into the spill path.
func bufferWithin[T any](ctx context.Context, src Source[T], limit int) ([]T, bool, error) {
	r := &ctxReader[T]{ctx: ctx, src: src}
	buf := make([]T, 0, min(limit+1, 1<<16))
	scratch := make([]T, stream.DefaultBatchLen)
	for {
		want := limit + 1 - len(buf)
		if want <= 0 {
			return buf, false, nil
		}
		if want > len(scratch) {
			want = len(scratch)
		}
		n, err := r.ReadBatch(scratch[:want])
		buf = append(buf, scratch[:n]...)
		if err == io.EOF {
			return buf, true, nil
		}
		if err != nil {
			return buf, false, err
		}
	}
}

// chainReader replays a buffered prefix, then continues with the live tail
// of the source it was buffered from — how a selection that overflowed the
// memory budget hands everything it has read to the spill path without
// losing elements.
type chainReader[T any] struct {
	buf []T
	i   int
	src Source[T]
	br  stream.BatchReader[T]
}

func (c *chainReader[T]) Read() (T, error) {
	if c.i < len(c.buf) {
		v := c.buf[c.i]
		c.i++
		return v, nil
	}
	return c.src.Read()
}

// ReadBatch drains the buffered prefix batch-at-a-time before delegating
// to the source's batch protocol.
func (c *chainReader[T]) ReadBatch(dst []T) (int, error) {
	if c.i < len(c.buf) {
		n := copy(dst, c.buf[c.i:])
		c.i += n
		return n, nil
	}
	if c.br == nil {
		if br, ok := c.src.(stream.BatchReader[T]); ok {
			c.br = br
		} else {
			c.br = stream.AsBatchReader[T](streamReader[T]{c.src})
		}
	}
	return c.br.ReadBatch(dst)
}

// skipN discards n elements from src, polling cancel between batches.
func skipN[T any](src stream.BatchReader[T], n int64, cancel func() error) error {
	buf := make([]T, stream.DefaultBatchLen)
	var skipped int64
	for skipped < n {
		if cancel != nil {
			if err := cancel(); err != nil {
				return err
			}
		}
		want := int64(len(buf))
		if rem := n - skipped; rem < want {
			want = rem
		}
		k, err := src.ReadBatch(buf[:want])
		skipped += int64(k)
		if err == io.EOF {
			return fmt.Errorf("repro: merged stream ended %d elements early", n-skipped)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Select returns the element of rank k — the k-th smallest under the
// sorter's comparator, 1-based, so Select(ctx, src, 1) is the minimum and
// k = n the maximum. When the input fits the memory budget the selection
// runs in memory through a dualheap partition (Sepesi): two opposing heaps
// are built around the pivot index — in parallel when the configuration
// allows — and their roots exchanged until the k smallest elements sit
// below the pivot, where the answer is the bottom heap's root. No sort
// happens and nothing spills. A larger input falls back to run generation,
// and the answer is read from the merged order at position k, abandoning
// the merge there — the tail past rank k is never read.
func (s *Sorter[T]) Select(ctx context.Context, src Source[T], k int) (T, SelectStats, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return zero, SelectStats{}, fmt.Errorf("repro: Select requires rank k ≥ 1, got %d", k)
	}
	t := startOp(s.cfg.Trace, "select", obs.Int("k", int64(k)))
	t.phase("read")
	buf, fits, err := bufferWithin(ctx, src, s.cfg.MemoryRecords)
	if err != nil {
		stats := SelectStats{In: int64(len(buf))}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return zero, stats, err
	}
	if fits {
		n := len(buf)
		if k > n {
			stats := SelectStats{In: int64(n)}
			err := fmt.Errorf("repro: Select rank %d exceeds input size %d", k, n)
			t.finish(&stats.Elapsed, &stats.Phases, err)
			return zero, stats, err
		}
		t.phase("partition")
		swaps := sel.Partition(buf, k, s.less, s.parallelism())
		s.swapsCounter().Add(swaps)
		stats := SelectStats{In: int64(n), Swaps: swaps}
		t.finish(&stats.Elapsed, &stats.Phases, nil)
		return buf[0], stats, nil
	}
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, &chainReader[T]{buf: buf, src: src}, "select")
	if err != nil {
		stats := SelectStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return zero, stats, err
	}
	stats := SelectStats{Sort: opSortStats(rset, st.Stats()), In: rset.Stats().Records, Sorted: true}
	if int64(k) > stats.In {
		st.Close()
		err := fmt.Errorf("repro: Select rank %d exceeds input size %d", k, stats.In)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return zero, stats, err
	}
	t.phase("select")
	v, err := selectAt(st, int64(k), ctx.Err)
	cerr := st.Close() // abandoning the merge here skips the tail past rank k
	stats.Sort = opSortStats(rset, st.Stats())
	if err == nil {
		err = cerr
	}
	err = ctxErr(ctx, err)
	t.finish(&stats.Elapsed, &stats.Phases, err)
	if err != nil {
		return zero, stats, err
	}
	return v, stats, nil
}

// selectAt reads forward to rank k (1-based) in the merged order and
// returns the element there.
func selectAt[T any](st *merge.Stream[T], k int64, cancel func() error) (T, error) {
	var zero T
	if err := skipN[T](st, k-1, cancel); err != nil {
		return zero, err
	}
	v, err := st.Read()
	if err != nil {
		return zero, err
	}
	return v, nil
}

// Quantiles returns the elements at the given quantiles of src under the
// sorter's comparator: for each q in qs, the element of rank ⌈q·n⌉
// (clamped to [1, n]), so 0.5 is the median and 1 the maximum. The result
// is index-aligned with qs, which need not be sorted. In memory the values
// come from one multiselect pass — the array is partitioned recursively at
// the middle remaining rank, so all quantiles cost far less than a sort.
// A larger input falls back to run generation, and the values are picked
// out of the merged order in one forward walk that stops at the last rank.
func (s *Sorter[T]) Quantiles(ctx context.Context, src Source[T], qs []float64) ([]T, SelectStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(qs) == 0 {
		return nil, SelectStats{}, fmt.Errorf("repro: Quantiles requires at least one quantile")
	}
	for _, q := range qs {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return nil, SelectStats{}, fmt.Errorf("repro: quantile %v outside [0, 1]", q)
		}
	}
	t := startOp(s.cfg.Trace, "quantiles", obs.Int("quantiles", int64(len(qs))))
	t.phase("read")
	buf, fits, err := bufferWithin(ctx, src, s.cfg.MemoryRecords)
	if err != nil {
		stats := SelectStats{In: int64(len(buf))}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return nil, stats, err
	}
	if fits {
		n := len(buf)
		if n == 0 {
			stats := SelectStats{}
			err := fmt.Errorf("repro: Quantiles of an empty input")
			t.finish(&stats.Elapsed, &stats.Phases, err)
			return nil, stats, err
		}
		t.phase("partition")
		ranks, at := sel.QuantileRanks(qs, int64(n))
		swaps, err := sel.Multiselect(buf, ranks, s.less, s.parallelism())
		if err != nil {
			stats := SelectStats{In: int64(n)}
			t.finish(&stats.Elapsed, &stats.Phases, err)
			return nil, stats, err
		}
		s.swapsCounter().Add(swaps)
		out := make([]T, len(qs))
		for i := range qs {
			out[i] = buf[ranks[at[i]]-1]
		}
		stats := SelectStats{In: int64(n), Swaps: swaps}
		t.finish(&stats.Elapsed, &stats.Phases, nil)
		return out, stats, nil
	}
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, &chainReader[T]{buf: buf, src: src}, "quantiles")
	if err != nil {
		stats := SelectStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return nil, stats, err
	}
	stats := SelectStats{Sort: opSortStats(rset, st.Stats()), In: rset.Stats().Records, Sorted: true}
	t.phase("select")
	ranks, at := sel.QuantileRanks(qs, stats.In)
	picked := make([]T, len(ranks))
	var pos int64
	perr := func() error {
		for i, r := range ranks {
			v, err := selectAt(st, int64(r)-pos, ctx.Err)
			if err != nil {
				return err
			}
			picked[i] = v
			pos = int64(r)
		}
		return nil
	}()
	cerr := st.Close() // the tail past the last rank is never read
	stats.Sort = opSortStats(rset, st.Stats())
	if perr == nil {
		perr = cerr
	}
	perr = ctxErr(ctx, perr)
	t.finish(&stats.Elapsed, &stats.Phases, perr)
	if perr != nil {
		return nil, stats, perr
	}
	out := make([]T, len(qs))
	for i := range qs {
		out[i] = picked[at[i]]
	}
	return out, stats, nil
}

// BottomK writes the k largest elements of src to dst in ascending order —
// the mirror of TopK, sharing its direction-parameterized selection core.
// When k fits within the memory budget a bounded min-heap of k elements
// tracks the selection threshold and nothing spills; otherwise the input
// goes through run generation and the merged order is fast-forwarded to
// its last k elements, so the merge still skips everything it can.
func (s *Sorter[T]) BottomK(ctx context.Context, src Source[T], k int, dst Sink[T]) (OpStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 0 {
		return OpStats{}, fmt.Errorf("repro: BottomK requires k ≥ 0, got %d", k)
	}
	if k == 0 {
		return OpStats{}, nil
	}
	t := startOp(s.cfg.Trace, "bottomk", obs.Int("k", int64(k)))
	if k <= s.cfg.MemoryRecords {
		t.phase("select")
		vals, read, err := sel.Stream[T](&ctxReader[T]{ctx: ctx, src: src}, k, sel.Largest, s.less, ctx.Err)
		if err != nil {
			stats := OpStats{In: read}
			err = ctxErr(ctx, err)
			t.finish(&stats.Elapsed, &stats.Phases, err)
			return stats, err
		}
		w := &ctxWriter[T]{ctx: ctx, dst: dst}
		err = stream.WriteAll[T](w, vals)
		stats := OpStats{In: read}
		if err == nil {
			stats.Out = int64(len(vals))
		}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, src, "bottomk")
	if err != nil {
		stats := OpStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("select")
	n := rset.Stats().Records
	skip := n - int64(k)
	if skip < 0 {
		skip = 0
	}
	out, serr := int64(0), skipN[T](st, skip, ctx.Err)
	if serr == nil {
		out, serr = copyN[T](&ctxWriter[T]{ctx: ctx, dst: dst}, st, int64(k), ctx.Err)
	}
	cerr := st.Close()
	stats := OpStats{Sort: opSortStats(rset, st.Stats()), In: n, Out: out, Sorted: true}
	if serr == nil {
		serr = cerr
	}
	serr = ctxErr(ctx, serr)
	t.finish(&stats.Elapsed, &stats.Phases, serr)
	return stats, serr
}

// ApproxSelect returns an element whose rank is within [k, k+⌈ε·n⌉] — an
// approximate k-th smallest with a tunable corruption budget, per the
// soft-heap selection of Kaplan, Tarjan and Zwick. The input is loaded
// into a soft heap whose car-pooling corrupts at most ε·n items, and the
// largest of k extractions is returned: every element smaller than it is
// either among the k extracted or corrupted, which is the whole rank
// guarantee. eps = 0 degrades to exact selection. Unlike Select, the
// approximate path keeps all n elements in memory regardless of the
// memory budget — the soft heap is a comparison-saving device, not a
// spilling one — and the returned stats carry both the guaranteed
// RankErrorBound and the observed Corrupted count.
func (s *Sorter[T]) ApproxSelect(ctx context.Context, src Source[T], k int, eps float64) (T, SelectStats, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return zero, SelectStats{}, fmt.Errorf("repro: ApproxSelect requires rank k ≥ 1, got %d", k)
	}
	h, err := sel.NewSoftHeap[T](eps, s.less)
	if err != nil {
		return zero, SelectStats{}, err
	}
	t := startOp(s.cfg.Trace, "approx_select", obs.Int("k", int64(k)))
	t.phase("read")
	vals, err := sel.ReadAll[T](&ctxReader[T]{ctx: ctx, src: src}, -1, ctx.Err)
	if err != nil {
		stats := SelectStats{In: int64(len(vals))}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return zero, stats, err
	}
	n := int64(len(vals))
	stats := SelectStats{In: n, RankErrorBound: int64(math.Ceil(eps * float64(n)))}
	if int64(k) > n {
		err := fmt.Errorf("repro: ApproxSelect rank %d exceeds input size %d", k, n)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return zero, stats, err
	}
	t.phase("select")
	for _, v := range vals {
		h.Insert(v)
	}
	// The largest of k extractions: each extraction removes a current soft
	// minimum, so everything smaller than the running maximum is either
	// already extracted or corrupted.
	best, _ := h.ExtractMin()
	for i := 1; i < k; i++ {
		v, _ := h.ExtractMin()
		if s.less(best, v) {
			best = v
		}
	}
	stats.Corrupted = h.Corrupted()
	t.finish(&stats.Elapsed, &stats.Phases, nil)
	return best, stats, nil
}
