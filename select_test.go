package repro

import (
	"context"
	"sort"
	"testing"

	"repro/internal/gen"
)

// The selection verification suite mirrors the operator suite: every
// selection operator, on every one of the paper's six input distributions,
// against a plain sort-then-index reference — over the fixed-width Record
// codec and the variable-width string codec, on both sides of the
// in-memory/spill boundary (the sorters' budget is 256 elements, so the
// full-size inputs spill and the small ones do not).

func sortedStrs(in []string) []string {
	s := append([]string(nil), in...)
	sort.Strings(s)
	return s
}

func TestSelectMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			in := opRecords(kind, n, 31)
			ref := sortedRecs(in)
			for _, k := range []int{1, 2, n / 2, n - 1, n} {
				got, st, err := recSorter(t).Select(context.Background(), newSliceSource(in), k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if got != ref[k-1] {
					t.Fatalf("k=%d: got %v, want %v", k, got, ref[k-1])
				}
				if !st.Sorted || st.In != int64(n) || st.Sort.Runs < 2 {
					t.Fatalf("k=%d stats %+v: want a genuine spilled selection", k, st)
				}
			}

			strs := opStrings(kind, n, 31)
			sref := sortedStrs(strs)
			for _, k := range []int{1, n / 3, n} {
				got, st, err := strSorter(t).Select(context.Background(), newSliceSource(strs), k)
				if err != nil {
					t.Fatalf("strings k=%d: %v", k, err)
				}
				if got != sref[k-1] {
					t.Fatalf("strings k=%d: got %q, want %q", k, got, sref[k-1])
				}
				if !st.Sorted {
					t.Fatalf("strings k=%d: expected the spill path", k)
				}
			}
		})
	}
}

func TestSelectInMemoryPath(t *testing.T) {
	for _, kind := range gen.Kinds {
		in := opRecords(kind, 200, 32) // within the 256-element budget
		ref := sortedRecs(in)
		for _, k := range []int{1, 100, 200} {
			got, st, err := recSorter(t).Select(context.Background(), newSliceSource(in), k)
			if err != nil {
				t.Fatalf("%v k=%d: %v", kind, k, err)
			}
			if got != ref[k-1] {
				t.Fatalf("%v k=%d: got %v, want %v", kind, k, got, ref[k-1])
			}
			if st.Sorted || st.Sort.Runs != 0 || st.In != 200 {
				t.Fatalf("%v k=%d stats %+v: want the in-memory dualheap path", kind, k, st)
			}
		}
	}
}

func TestSelectValidates(t *testing.T) {
	s := recSorter(t)
	if _, _, err := s.Select(context.Background(), newSliceSource([]Record{{}}), 0); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, _, err := s.Select(context.Background(), newSliceSource([]Record{{}}), 2); err == nil {
		t.Fatalf("rank beyond input accepted (in-memory)")
	}
	big := opRecords(gen.Random, 1000, 3)
	if _, _, err := s.Select(context.Background(), newSliceSource(big), 1001); err == nil {
		t.Fatalf("rank beyond input accepted (spilled)")
	}
}

func TestSelectHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := opRecords(gen.Random, 2000, 5)
	if _, _, err := recSorter(t).Select(ctx, newSliceSource(in), 10); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQuantilesMatchReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	qs := []float64{0.5, 0.9, 0.99}
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			in := opRecords(kind, n, 41)
			ref := sortedRecs(in)
			want := quantileRef(ref, qs)
			got, st, err := recSorter(t).Quantiles(context.Background(), newSliceSource(in), qs)
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "quantiles", got, want)
			if !st.Sorted || st.In != int64(n) {
				t.Fatalf("stats %+v: want a genuine spilled quantile pass", st)
			}

			// In memory: same reference, small input, multiselect path.
			small := opRecords(kind, 250, 42)
			swant := quantileRef(sortedRecs(small), qs)
			sgot, sst, err := recSorter(t).Quantiles(context.Background(), newSliceSource(small), qs)
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "in-memory quantiles", sgot, swant)
			if sst.Sorted {
				t.Fatalf("stats %+v: want the in-memory multiselect path", sst)
			}
		})
	}
}

func TestQuantilesStringsAndUnsortedQs(t *testing.T) {
	n := opTestN(t)
	strs := opStrings(gen.MixedBalanced, n, 43)
	ref := sortedStrs(strs)
	qs := []float64{0.99, 0, 0.5, 1} // deliberately unsorted, with extremes
	got, _, err := strSorter(t).Quantiles(context.Background(), newSliceSource(strs), qs)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "string quantiles", got, quantileRef(ref, qs))
}

// quantileRef picks ⌈q·n⌉-ranked elements (clamped) out of a sorted slice.
func quantileRef[T any](ref []T, qs []float64) []T {
	out := make([]T, len(qs))
	n := len(ref)
	for i, q := range qs {
		r := int(q * float64(n))
		if float64(r) < q*float64(n) {
			r++
		}
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		out[i] = ref[r-1]
	}
	return out
}

func TestQuantilesValidate(t *testing.T) {
	s := recSorter(t)
	if _, _, err := s.Quantiles(context.Background(), newSliceSource([]Record{{}}), nil); err == nil {
		t.Fatalf("empty quantile set accepted")
	}
	if _, _, err := s.Quantiles(context.Background(), newSliceSource([]Record{{}}), []float64{1.5}); err == nil {
		t.Fatalf("q > 1 accepted")
	}
	if _, _, err := s.Quantiles(context.Background(), newSliceSource[Record](nil), []float64{0.5}); err == nil {
		t.Fatalf("empty input accepted")
	}
}

func TestBottomKMatchesReferenceAllDistributions(t *testing.T) {
	n := opTestN(t)
	for _, kind := range gen.Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			in := opRecords(kind, n, 51)
			ref := sortedRecs(in)
			// Bounded path: k within the 256-element budget.
			for _, k := range []int{1, 10, 256} {
				var out sliceSink[Record]
				st, err := recSorter(t).BottomK(context.Background(), newSliceSource(in), k, &out)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				requireEqual(t, "bounded bottom-k", out.vals, ref[n-k:])
				if st.Sorted || st.In != int64(n) || st.Out != int64(k) {
					t.Fatalf("k=%d stats %+v: want the bounded threshold-heap path", k, st)
				}
			}
			// Spill path: k beyond the budget.
			k := 600
			var out sliceSink[Record]
			st, err := recSorter(t).BottomK(context.Background(), newSliceSource(in), k, &out)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			requireEqual(t, "spilled bottom-k", out.vals, ref[n-k:])
			if !st.Sorted || st.Sort.Runs < 2 || st.Out != int64(k) {
				t.Fatalf("k=%d stats %+v: want a genuine spilled bottom-k", k, st)
			}

			// Strings, bounded.
			strs := opStrings(kind, n, 51)
			sref := sortedStrs(strs)
			var sout sliceSink[string]
			if _, err := strSorter(t).BottomK(context.Background(), newSliceSource(strs), 25, &sout); err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "string bottom-k", sout.vals, sref[n-25:])
		})
	}
}

func TestBottomKEdgeCases(t *testing.T) {
	s := recSorter(t)
	var out sliceSink[Record]
	if _, err := s.BottomK(context.Background(), newSliceSource([]Record{{Key: 1}}), -1, &out); err == nil {
		t.Fatalf("negative k accepted")
	}
	st, err := s.BottomK(context.Background(), newSliceSource([]Record{{Key: 1}}), 0, &out)
	if err != nil || st.Out != 0 || len(out.vals) != 0 {
		t.Fatalf("k=0: st=%+v err=%v", st, err)
	}
	// k larger than the whole input returns everything, both paths.
	in := opRecords(gen.Random, 100, 6)
	ref := sortedRecs(in)
	out.vals = nil
	if _, err := s.BottomK(context.Background(), newSliceSource(in), 200, &out); err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "k>n bounded", out.vals, ref)
	big := opRecords(gen.Random, 500, 6)
	bref := sortedRecs(big)
	out.vals = nil
	if _, err := s.BottomK(context.Background(), newSliceSource(big), 400, &out); err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "spilled k close to n", out.vals, bref[100:])
}

func TestTopKAndBottomKArePerfectMirrors(t *testing.T) {
	// The two directions share sel.Stream; selecting k smallest of the
	// negated order must equal the k largest of the original.
	in := opRecords(gen.Alternating, 1000, 61)
	ref := sortedRecs(in)
	var top, bottom sliceSink[Record]
	if _, err := recSorter(t).TopK(context.Background(), newSliceSource(in), 50, &top); err != nil {
		t.Fatal(err)
	}
	if _, err := recSorter(t).BottomK(context.Background(), newSliceSource(in), 50, &bottom); err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "top", top.vals, ref[:50])
	requireEqual(t, "bottom", bottom.vals, ref[950:])
}

func TestApproxSelectRankErrorWithinBudget(t *testing.T) {
	n := opTestN(t)
	for _, eps := range []float64{0.01, 0.1} {
		for _, kind := range gen.Kinds {
			t.Run(kind.String(), func(t *testing.T) {
				in := opRecords(kind, n, 71)
				ref := sortedRecs(in)
				budget := int64(eps * float64(n))
				for _, k := range []int{1, n / 100, n / 2, n} {
					if k < 1 {
						k = 1
					}
					got, st, err := recSorter(t).ApproxSelect(context.Background(), newSliceSource(in), k, eps)
					if err != nil {
						t.Fatalf("eps=%v k=%d: %v", eps, k, err)
					}
					// Rank bounds under duplicates: at least k elements must be
					// ≤ got, and fewer than k+⌈εn⌉ strictly below it.
					le, lt := 0, 0
					for _, v := range ref {
						if totalRecLess(v, got) {
							lt++
						}
						if !totalRecLess(got, v) {
							le++
						}
					}
					if le < k {
						t.Fatalf("eps=%v k=%d: only %d elements ≤ result, want ≥ %d", eps, k, le, k)
					}
					if int64(lt) > int64(k-1)+budget {
						t.Fatalf("eps=%v k=%d: %d elements below result exceed k-1+%d", eps, k, lt, budget)
					}
					if st.RankErrorBound != int64(float64(budget)+0.5) && st.RankErrorBound < budget {
						t.Fatalf("eps=%v: RankErrorBound = %d, want ≥ %d", eps, st.RankErrorBound, budget)
					}
					if st.In != int64(n) || st.Sorted {
						t.Fatalf("stats %+v: ApproxSelect is an in-memory pass", st)
					}
				}
			})
		}
	}
}

func TestApproxSelectExactWhenEpsZero(t *testing.T) {
	in := opRecords(gen.Random, 1200, 72)
	ref := sortedRecs(in)
	for _, k := range []int{1, 600, 1200} {
		got, st, err := recSorter(t).ApproxSelect(context.Background(), newSliceSource(in), k, 0)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got != ref[k-1] {
			t.Fatalf("k=%d: got %v, want %v", k, got, ref[k-1])
		}
		if st.Corrupted != 0 || st.RankErrorBound != 0 {
			t.Fatalf("k=%d stats %+v: eps=0 must be corruption-free", k, st)
		}
	}
}

func TestApproxSelectValidates(t *testing.T) {
	s := recSorter(t)
	in := []Record{{Key: 1}}
	if _, _, err := s.ApproxSelect(context.Background(), newSliceSource(in), 0, 0.1); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, _, err := s.ApproxSelect(context.Background(), newSliceSource(in), 1, 1.0); err == nil {
		t.Fatalf("eps=1 accepted")
	}
	if _, _, err := s.ApproxSelect(context.Background(), newSliceSource(in), 2, 0.1); err == nil {
		t.Fatalf("rank beyond input accepted")
	}
}

func TestSelectSpillAgreesWithInMemory(t *testing.T) {
	// The same input through both paths (budget 256 vs 1<<20) must select
	// identical elements at every probed rank.
	in := opRecords(gen.MixedImbalanced, 2000, 81)
	small := recSorter(t)
	large := recSorter(t, WithMemoryRecords(1<<20))
	for _, k := range []int{1, 3, 999, 2000} {
		a, ast, err := small.Select(context.Background(), newSliceSource(in), k)
		if err != nil {
			t.Fatal(err)
		}
		b, bst, err := large.Select(context.Background(), newSliceSource(in), k)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("k=%d: spill %v != in-memory %v", k, a, b)
		}
		if !ast.Sorted || bst.Sorted {
			t.Fatalf("k=%d: paths not exercised as intended (%v, %v)", k, ast.Sorted, bst.Sorted)
		}
	}
}
