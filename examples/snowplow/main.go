// snowplow runs the paper's §3.6 differential-equation model of replacement
// selection — Knuth's circular snowplow — and renders the memory-density
// evolution of Fig 3.8 as ASCII, showing the convergence from a uniform
// memory fill to the stable triangular profile m(x) = 2 − 2x and of the run
// length to 2× memory.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/model"
)

func main() {
	const runs = 4
	lengths, snaps, err := model.EstimateRunLengths(model.Config{Cells: 2048}, runs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Knuth's snowplow (§3.6): memory density at the start of each run")
	fmt.Println()
	for r, snap := range snaps {
		fmt.Printf("run %d (length %.3fx memory):\n", r+1, lengths[r])
		plot(snap)
		fmt.Println()
	}
	fmt.Printf("stable profile: m(x) = 2 - 2x, run length -> 2.0 (reached by run %d)\n", runs)
}

// plot renders a density profile as a 10-row ASCII chart.
func plot(snap []float64) {
	const cols, rows = 64, 10
	stride := len(snap) / cols
	var heights [cols]float64
	for c := 0; c < cols; c++ {
		heights[c] = snap[c*stride]
	}
	for r := rows; r >= 1; r-- {
		threshold := 2.0 * float64(r) / float64(rows)
		var sb strings.Builder
		for c := 0; c < cols; c++ {
			if heights[c] >= threshold-1e-9 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		fmt.Printf("  %4.1f |%s\n", threshold, sb.String())
	}
	fmt.Printf("       +%s\n", strings.Repeat("-", cols))
	fmt.Printf("        x=0%sx=1\n", strings.Repeat(" ", cols-6))
}
