// dbsort simulates the database scenario that motivates the paper
// (§1, §5.2): a table is scanned in the order of column A while the sort
// operator needs the order of column B. When A and B are anticorrelated the
// sort input arrives reverse-sorted — the worst case for classic
// replacement selection (runs of exactly memory size, Theorem 3) and the
// best case for 2WRS (a single run, Theorem 4).
//
// The example builds such a table, feeds the scan through both algorithms
// under the same memory budget, and compares what reaches the merge phase.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"

	"repro"
)

// row is a table row with two anticorrelated columns.
type row struct {
	a, b int64
	id   uint64
}

// scanInAOrder yields records keyed by column B while the table is read in
// column-A order, which is exactly how a B-tree scan on A would feed a sort
// on B.
type scanInAOrder struct {
	rows []row
	pos  int
}

func (s *scanInAOrder) Read() (repro.Record, error) {
	if s.pos >= len(s.rows) {
		return repro.Record{}, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return repro.Record{Key: r.b, Aux: r.id}, nil
}

func main() {
	const (
		tableRows = 2_000_000
		memory    = 20_000 // 1% of the table
	)
	// Build the table: column A ascending, column B = C - A + noise
	// (anticorrelated, e.g. "price" vs "discount tier").
	rng := rand.New(rand.NewSource(7))
	rows := make([]row, tableRows)
	for i := range rows {
		a := int64(i) * 100
		rows[i] = row{
			a:  a,
			b:  int64(tableRows)*100 - a + rng.Int63n(90),
			id: uint64(i),
		}
	}

	fmt.Printf("table: %d rows, scanned in column-A order, sorting by column B\n", tableRows)
	fmt.Printf("memory budget: %d records (%.1f%% of the input)\n\n",
		memory, 100*float64(memory)/float64(tableRows))

	var out countingWriter
	for _, alg := range []repro.Algorithm{repro.RS, repro.TwoWayRS} {
		cfg := repro.DefaultConfig(memory)
		cfg.Algorithm = alg
		out.n, out.last, out.sorted = 0, 0, true
		stats, err := repro.Sort(&scanInAOrder{rows: rows}, &out, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v runs=%-6d avg run=%.2fx memory  merge passes=%d  total=%v  output sorted=%v\n",
			alg, stats.Runs, stats.AvgRunLength/float64(memory),
			stats.MergePasses, stats.TotalWall().Round(1e6), out.sorted)
	}
	fmt.Println("\n2WRS turns the anticorrelated scan into a single run: the merge phase")
	fmt.Println("becomes a plain copy, which is where the paper's 2.5x speedup comes from.")
}

// countingWriter verifies the output order on the fly without storing it.
type countingWriter struct {
	n      int64
	last   int64
	sorted bool
}

func (w *countingWriter) Write(r repro.Record) error {
	if w.n > 0 && r.Key < w.last {
		w.sorted = false
	}
	w.last = r.Key
	w.n++
	return nil
}
