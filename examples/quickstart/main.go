// Quickstart: sort a file of records that does not fit in the configured
// memory budget, using the paper's recommended 2WRS configuration, and
// print the run-generation statistics that make 2WRS interesting.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "twrs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One million records of a "mixed" stream — an ascending trend
	// interleaved with a descending one, the workload databases produce
	// when scanning anticorrelated columns — sorted with memory for only
	// 10k records (1% of the input).
	const n, memory = 1_000_000, 10_000
	in := filepath.Join(dir, "input.rec")
	out := filepath.Join(dir, "sorted.rec")
	if err := repro.WriteFile(in, repro.Dataset(repro.DatasetMixedBalanced, n, 42)); err != nil {
		log.Fatal(err)
	}

	cfg := repro.DefaultConfig(memory)
	cfg.TempDir = filepath.Join(dir, "tmp")
	stats, err := repro.SortFile(in, out, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d records with memory for %d (%.1f%% of input)\n",
		stats.Records, memory, 100*float64(memory)/float64(n))
	fmt.Printf("runs generated:     %d\n", stats.Runs)
	fmt.Printf("avg run length:     %.1f records (%.2fx memory)\n",
		stats.AvgRunLength, stats.AvgRunLength/float64(memory))
	fmt.Printf("merge passes:       %d\n", stats.MergePasses)
	fmt.Printf("run generation:     %v\n", stats.RunGenWall.Round(1e6))
	fmt.Printf("merge phase:        %v\n", stats.MergeWall.Round(1e6))

	// Compare with classic replacement selection on the same input.
	cfg.Algorithm = repro.RS
	rsStats, err := repro.SortFile(in, filepath.Join(dir, "sorted-rs.rec"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassic RS on the same input: %d runs (%.2fx memory), %d merge passes\n",
		rsStats.Runs, rsStats.AvgRunLength/float64(memory), rsStats.MergePasses)
	fmt.Printf("2WRS generated %.1fx longer runs\n",
		stats.AvgRunLength/rsStats.AvgRunLength)
}
