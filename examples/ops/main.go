// Ops: the sorted-stream operator layer in one program. A synthetic page
// view log (page, visitor, dwell time) streams through all four operators:
//
//   - Distinct: the set of pages ever visited
//   - GroupBy:  views and total dwell time per page
//   - TopK:     the 10 longest dwell times — selected through a bounded
//     heap without running the external sort at all
//   - MergeJoin: page metadata ⋈ per-page aggregates, two independently
//     sorted inputs joined on the page id
//
// Everything runs under a memory budget far below the input size, so the
// sort-backed operators genuinely spill runs and merge them back.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"

	"repro"
)

const (
	views  = 500_000 // page-view events
	pages  = 1_200   // distinct page ids
	memory = 4_096   // sorter budget, in records
)

// view is one log event. The operators order views differently per query,
// so each query builds its own Sorter with the comparator it needs.
type view struct {
	Page    int64
	Visitor int64
	Dwell   int64 // milliseconds
}

// viewCodec stores a view as four fixed 8-byte words (one of them padding:
// the backward run format wants the page size to be a multiple of the
// element size, and 32 divides the 4 KB page where 24 would not).
type viewCodec struct{}

func (viewCodec) Append(buf []byte, v view) []byte {
	for _, x := range [4]int64{v.Page, v.Visitor, v.Dwell, 0} {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(uint64(x)>>(8*i)))
		}
	}
	return buf
}

func (viewCodec) Decode(buf []byte) (view, int, error) {
	if len(buf) < 32 {
		return view{}, 0, repro.ErrShortCodec
	}
	word := func(off int) int64 {
		var u uint64
		for i := 0; i < 8; i++ {
			u |= uint64(buf[off+i]) << (8 * i)
		}
		return int64(u)
	}
	return view{Page: word(0), Visitor: word(8), Dwell: word(16)}, 32, nil
}

func (viewCodec) FixedSize() int { return 32 }

// viewSource streams the synthetic log without materialising it.
type viewSource struct {
	rng  *rand.Rand
	left int
}

func newViews() *viewSource { return &viewSource{rng: rand.New(rand.NewSource(7)), left: views} }

func (s *viewSource) Read() (view, error) {
	if s.left == 0 {
		return view{}, io.EOF
	}
	s.left--
	// Zipf-ish page popularity: low page ids dominate.
	p := s.rng.Int63n(int64(pages))
	p = (p * p) / int64(pages)
	return view{
		Page:    p,
		Visitor: s.rng.Int63n(50_000),
		Dwell:   50 + s.rng.Int63n(60_000),
	}, nil
}

func sorterBy(less func(a, b view) bool) *repro.Sorter[view] {
	s, err := repro.New(less,
		repro.WithMemoryRecords(memory),
		repro.WithCodec[view](viewCodec{}),
		repro.WithKey(func(v view) float64 { return float64(v.Page) }))
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// collect buffers operator output in memory (small per query here).
type collect[T any] struct{ vals []T }

func (c *collect[T]) Write(v T) error { c.vals = append(c.vals, v); return nil }

func main() {
	ctx := context.Background()
	byPage := func(a, b view) bool { return a.Page < b.Page }

	// Distinct pages: order by page, one representative per page id.
	var pagesSeen collect[view]
	st, err := sorterBy(byPage).Distinct(ctx, newViews(), &pagesSeen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct: %d views → %d pages (%d runs spilled, %d merge ops)\n",
		st.In, st.Out, st.Sort.Runs, st.Sort.MergeOps)

	// Per-page aggregate: fold count into Visitor, dwell sum into Dwell.
	samePage := func(a, b view) bool { return a.Page == b.Page }
	aggregate := func(acc, v view) view {
		return view{Page: acc.Page, Visitor: acc.Visitor + 1, Dwell: acc.Dwell + v.Dwell}
	}
	seed := func(v view) view { return view{Page: v.Page, Visitor: 1, Dwell: v.Dwell} }
	// GroupBy seeds the accumulator with the group's first element, so the
	// source is pre-mapped into aggregate space.
	mapped := &mapSource{src: newViews(), f: seed}
	var perPage collect[view]
	st, err = sorterBy(byPage).GroupBy(ctx, mapped, samePage, aggregate, &perPage)
	if err != nil {
		log.Fatal(err)
	}
	busiest := perPage.vals[0]
	for _, p := range perPage.vals {
		if p.Visitor > busiest.Visitor {
			busiest = p
		}
	}
	fmt.Printf("groupby:  %d groups; busiest page %d with %d views, %.1f s mean dwell\n",
		st.Groups, busiest.Page, busiest.Visitor,
		float64(busiest.Dwell)/float64(busiest.Visitor)/1000)

	// Top 10 by dwell time: k ≪ N, so this never sorts and never spills.
	longest := sorterBy(func(a, b view) bool { return a.Dwell > b.Dwell })
	var top collect[view]
	st, err = longest.TopK(ctx, newViews(), 10, &top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topk:     scanned %d views for the top %d dwell times (sorted=%v, runs=%d) — head %dms\n",
		st.In, len(top.vals), st.Sorted, st.Sort.Runs, top.vals[0].Dwell)

	// Join page metadata (title length as a stand-in) with the aggregates.
	metaSorter, err := repro.New(func(a, b meta) bool { return a.Page < b.Page },
		repro.WithMemoryRecords(memory),
		repro.WithCodec[meta](metaCodec{}))
	if err != nil {
		log.Fatal(err)
	}
	metaSrc := &sliceSource[meta]{}
	for p := int64(0); p < pages; p += 2 { // metadata for every other page
		metaSrc.vals = append(metaSrc.vals, meta{Page: p, TitleLen: 10 + p%40})
	}
	var rows collect[joined]
	js, err := repro.MergeJoin(ctx,
		metaSorter, metaSrc,
		sorterBy(byPage), &sliceSource[view]{vals: perPage.vals},
		func(l meta, r view) int {
			switch {
			case l.Page < r.Page:
				return -1
			case l.Page > r.Page:
				return 1
			}
			return 0
		},
		func(l meta, r view) joined { return joined{Page: l.Page, TitleLen: l.TitleLen, Views: r.Visitor} },
		&rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join:     %d metadata rows ⋈ %d aggregates → %d joined rows\n",
		js.LeftIn, js.RightIn, js.Out)
}

// mapSource applies f to every element of src.
type mapSource struct {
	src repro.Source[view]
	f   func(view) view
}

func (m *mapSource) Read() (view, error) {
	v, err := m.src.Read()
	if err != nil {
		return v, err
	}
	return m.f(v), nil
}

// sliceSource replays a slice.
type sliceSource[T any] struct {
	vals []T
	pos  int
}

func (s *sliceSource[T]) Read() (T, error) {
	if s.pos >= len(s.vals) {
		var zero T
		return zero, io.EOF
	}
	v := s.vals[s.pos]
	s.pos++
	return v, nil
}

// meta is a page's metadata row, the join's left side; joined is the
// join's output row.
type meta struct{ Page, TitleLen int64 }

type joined struct{ Page, TitleLen, Views int64 }

// metaCodec stores a meta as two fixed 8-byte words.
type metaCodec struct{}

func (metaCodec) Append(buf []byte, v meta) []byte {
	for _, x := range [2]int64{v.Page, v.TitleLen} {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(uint64(x)>>(8*i)))
		}
	}
	return buf
}

func (metaCodec) Decode(buf []byte) (meta, int, error) {
	var v meta
	if len(buf) < 16 {
		return v, 0, repro.ErrShortCodec
	}
	word := func(off int) int64 {
		var u uint64
		for i := 0; i < 8; i++ {
			u |= uint64(buf[off+i]) << (8 * i)
		}
		return int64(u)
	}
	v.Page, v.TitleLen = word(0), word(8)
	return v, 16, nil
}

func (metaCodec) FixedSize() int { return 16 }
