// Strings: sort one million variable-length string records with the
// generic Sorter API — the workload class the fixed 16-byte record API
// could not express. The strings stream from a deterministic generator,
// spill to disk through the length-prefixed variable-width codec under a
// memory budget of 1% of the input, and stream back out in order; the
// program never materialises the full dataset in memory.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"repro"
)

const (
	n      = 1_000_000 // input records
	memory = 10_000    // sorter budget, in records (1% of the input)
)

// wordA/wordB vocabularies produce keys like "kiwi-mango-0042x…" with
// lengths varying from ~12 to ~60 bytes.
var vocab = []string{
	"amber", "birch", "cobalt", "dune", "ember", "fjord", "glacier",
	"harbor", "iris", "juniper", "kiwi", "lagoon", "mango", "nectar",
	"onyx", "pearl", "quartz", "raven", "sable", "tundra",
}

// stringSource deterministically generates n pseudo-random variable-length
// strings, one Read at a time.
type stringSource struct {
	rng  *rand.Rand
	left int
}

func (s *stringSource) Read() (string, error) {
	if s.left == 0 {
		return "", io.EOF
	}
	s.left--
	a := vocab[s.rng.Intn(len(vocab))]
	b := vocab[s.rng.Intn(len(vocab))]
	// A variable-width tail: between 0 and 40 extra bytes.
	tail := make([]byte, s.rng.Intn(41))
	for i := range tail {
		tail[i] = byte('a' + s.rng.Intn(26))
	}
	return fmt.Sprintf("%s-%s-%06d-%s", a, b, s.rng.Intn(1_000_000), tail), nil
}

// checkSink verifies the output arrives in order and counts it.
type checkSink struct {
	n     int64
	bytes int64
	last  string
}

func (c *checkSink) Write(v string) error {
	if c.n > 0 && v < c.last {
		return fmt.Errorf("output out of order at record %d: %q after %q", c.n, v, c.last)
	}
	c.last = v
	c.n++
	c.bytes += int64(len(v))
	return nil
}

func main() {
	dir, err := os.MkdirTemp("", "twrs-strings")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sorter, err := repro.New(
		func(a, b string) bool { return a < b },
		repro.WithMemoryRecords(memory),
		repro.WithTempDir(dir),
		repro.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	src := &stringSource{rng: rand.New(rand.NewSource(42)), left: n}
	var dst checkSink
	start := time.Now()
	stats, err := sorter.Sort(context.Background(), src, &dst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d variable-length strings (%.1f MB) in %v\n",
		dst.n, float64(dst.bytes)/1e6, time.Since(start).Round(time.Millisecond))
	fmt.Printf("memory budget:      %d records (%.1f%% of the input)\n",
		memory, 100*float64(memory)/float64(n))
	fmt.Printf("runs generated:     %d\n", stats.Runs)
	fmt.Printf("avg run length:     %.1f records (%.2fx memory)\n",
		stats.AvgRunLength, stats.AvgRunLength/float64(memory))
	fmt.Printf("merge passes:       %d\n", stats.MergePasses)
	fmt.Printf("output verified:    %d records in ascending order\n", dst.n)
	if dst.n != n {
		log.Fatalf("record count mismatch: %d != %d", dst.n, n)
	}
}
