package repro

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/extsort"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/stream"
)

// This file is the public surface of the operator layer: the queries sorted
// runs make cheap, offered directly on Sorter[T] instead of forcing callers
// to materialise a sorted file and post-process it. Distinct, GroupBy and
// MergeJoin stream the merged order through internal/ops transformers;
// TopK bypasses the sort machinery entirely when k fits in memory. See
// DESIGN.md §"Operator layer".

// OpStats describes one operator execution.
type OpStats struct {
	// Sort carries the underlying external sort's statistics — run counts,
	// merge passes, phase timings. It is zero when the operator bypassed
	// the sort entirely (TopK's bounded-selection path).
	Sort Stats
	// In counts elements consumed from the source; Out counts elements
	// emitted to the sink.
	In, Out int64
	// Groups counts the groups GroupBy folded (zero for other operators).
	Groups int64
	// Sorted reports whether an external sort ran. TopK with k within the
	// memory budget selects through a bounded heap instead: Sorted is false,
	// Sort.Runs is 0, and nothing was spilled.
	Sorted bool
	// Elapsed is the end-to-end wall time of the operator call.
	Elapsed time.Duration
	// Phases breaks Elapsed into named per-phase wall durations in
	// execution order: "generate" (run generation and merge setup) when an
	// external sort ran, then the operator's own drain phase ("distinct",
	// "groupby", "select", ...). Their sum never exceeds Elapsed.
	Phases []PhaseStat
}

// eq derives the equivalence relation of the sorter's comparator: two
// elements are equal when neither orders before the other.
func (s *Sorter[T]) eq() func(a, b T) bool {
	less := s.less
	return func(a, b T) bool { return !less(a, b) && !less(b, a) }
}

// openSorted runs the sort's first phase over the context-wrapped source and
// opens the merged order as a pull stream. The caller owns both returns:
// Close the stream (which deletes the remaining run files) exactly once.
// prefix namespaces this operator's temporary files so concurrent phases —
// e.g. the two sides of a MergeJoin sharing a TempDir — cannot collide.
func (s *Sorter[T]) openSorted(ctx context.Context, src Source[T], prefix string) (*merge.Stream[T], *extsort.RunSet[T], error) {
	fs := s.fs
	if fs == nil {
		var err error
		fs, err = s.cfg.filesystem()
		if err != nil {
			return nil, nil, err
		}
	}
	icfg := s.cfg.toInternal()
	icfg.Cancel = ctx.Err
	icfg.Prefix = prefix
	rset, err := extsort.GenerateRuns[T](
		&ctxReader[T]{ctx: ctx, src: src},
		fs,
		icfg,
		extsort.Ops[T]{Less: s.less, Codec: s.codec, Key: s.key, ElementBytes: s.elementBytes},
	)
	if err != nil {
		return nil, nil, err
	}
	st, err := rset.OpenMerged()
	if err != nil {
		rset.Discard()
		return nil, nil, err
	}
	return st, rset, nil
}

// opSortStats assembles the two-phase sort statistics of an operator run:
// the run-generation half from the RunSet, the merge half from the Stream.
func opSortStats[T any](rset *extsort.RunSet[T], ms merge.Stats) Stats {
	st := rset.Stats()
	st.MergeInputs = ms.Inputs
	st.MergePasses = ms.Passes
	st.MergeOps = ms.Merges
	return st
}

// ctxErr prefers the context's cancellation cause over the transport error
// it surfaced as, matching Sort's error mapping.
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// Distinct sorts src and writes one element per equivalence class of the
// sorter's comparator to dst, in ascending order: the sorted-stream
// equivalent of SELECT DISTINCT. Equal elements are represented by the
// first of them in merged order. The context is honoured at batch
// boundaries throughout, exactly as in Sort.
func (s *Sorter[T]) Distinct(ctx context.Context, src Source[T], dst Sink[T]) (OpStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := startOp(s.cfg.Trace, "distinct")
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, src, "distinct")
	if err != nil {
		stats := OpStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("distinct")
	d := ops.NewDistinct[T](st, s.eq())
	out, err := stream.CopyCancel[T](&ctxWriter[T]{ctx: ctx, dst: dst}, d, ctx.Err)
	cerr := st.Close()
	stats := OpStats{Sort: opSortStats(rset, st.Stats()), In: rset.Stats().Records, Out: out, Sorted: true}
	if err == nil {
		err = cerr
	}
	err = ctxErr(ctx, err)
	t.finish(&stats.Elapsed, &stats.Phases, err)
	return stats, err
}

// GroupBy sorts src, folds each run of same-group elements into a single
// element, and writes the folded groups to dst in ascending order — grouped
// aggregation over the sorted stream. sameGroup decides group membership
// against the group's first element and must agree with the sorter's order
// (same-group elements must be adjacent once sorted); nil means the
// comparator's equivalence classes. reduce folds one member into the
// accumulator, which the group's first element seeds.
func (s *Sorter[T]) GroupBy(ctx context.Context, src Source[T], sameGroup func(a, b T) bool, reduce func(acc, v T) T, dst Sink[T]) (OpStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if reduce == nil {
		return OpStats{}, fmt.Errorf("repro: GroupBy requires a reduce function")
	}
	if sameGroup == nil {
		sameGroup = s.eq()
	}
	t := startOp(s.cfg.Trace, "groupby")
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, src, "groupby")
	if err != nil {
		stats := OpStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("groupby")
	g := ops.NewGroupBy[T](st, sameGroup, reduce)
	out, err := stream.CopyCancel[T](&ctxWriter[T]{ctx: ctx, dst: dst}, g, ctx.Err)
	cerr := st.Close()
	stats := OpStats{
		Sort:   opSortStats(rset, st.Stats()),
		In:     rset.Stats().Records,
		Out:    out,
		Groups: g.Groups(),
		Sorted: true,
	}
	if err == nil {
		err = cerr
	}
	err = ctxErr(ctx, err)
	t.finish(&stats.Elapsed, &stats.Phases, err)
	return stats, err
}

// TopK writes the k smallest elements of src to dst in ascending order.
//
// When k fits within the sorter's memory budget — the typical top-k query,
// k ≪ N — the external sort machinery is bypassed entirely: a bounded
// max-heap of k elements tracks the selection threshold, every element
// above it is discarded on sight, and nothing spills (OpStats.Sorted is
// false, Sort is zero). When k exceeds the budget, TopK falls back to a
// full run-generation pass but still skips the tail of the merge: the
// merged order is streamed and abandoned after k elements, so the final
// pass reads only what it emits.
func (s *Sorter[T]) TopK(ctx context.Context, src Source[T], k int, dst Sink[T]) (OpStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 0 {
		return OpStats{}, fmt.Errorf("repro: TopK requires k ≥ 0, got %d", k)
	}
	if k == 0 {
		return OpStats{}, nil
	}
	t := startOp(s.cfg.Trace, "topk", obs.Int("k", int64(k)))
	if k <= s.cfg.MemoryRecords {
		t.phase("select")
		vals, read, err := ops.TopK[T](&ctxReader[T]{ctx: ctx, src: src}, k, s.less, ctx.Err)
		if err != nil {
			stats := OpStats{In: read}
			err = ctxErr(ctx, err)
			t.finish(&stats.Elapsed, &stats.Phases, err)
			return stats, err
		}
		w := &ctxWriter[T]{ctx: ctx, dst: dst}
		err = stream.WriteAll[T](w, vals)
		stats := OpStats{In: read}
		if err == nil {
			stats.Out = int64(len(vals))
		}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("generate")
	st, rset, err := s.openSorted(ctx, src, "topk")
	if err != nil {
		stats := OpStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("select")
	out, err := copyN[T](&ctxWriter[T]{ctx: ctx, dst: dst}, st, int64(k), ctx.Err)
	cerr := st.Close() // abandoning the stream here is what skips the tail
	stats := OpStats{Sort: opSortStats(rset, st.Stats()), In: rset.Stats().Records, Out: out, Sorted: true}
	if err == nil {
		err = cerr
	}
	err = ctxErr(ctx, err)
	t.finish(&stats.Elapsed, &stats.Phases, err)
	return stats, err
}

// copyN streams at most n elements from src to dst, polling cancel between
// batches. dst keeps its batch protocol when it has one (the ctxWriter
// does), so the capped copy rides the same fast path as CopyCancel.
func copyN[T any](dst stream.Writer[T], src stream.BatchReader[T], n int64, cancel func() error) (int64, error) {
	bw := stream.AsBatchWriter[T](dst)
	buf := make([]T, stream.DefaultBatchLen)
	var copied int64
	for copied < n {
		if cancel != nil {
			if err := cancel(); err != nil {
				return copied, err
			}
		}
		want := int64(len(buf))
		if rem := n - copied; rem < want {
			want = rem
		}
		k, err := src.ReadBatch(buf[:want])
		if k > 0 {
			if werr := bw.WriteBatch(buf[:k]); werr != nil {
				return copied, werr
			}
			copied += int64(k)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}

// JoinStats describes one merge-join execution.
type JoinStats struct {
	// Left and Right carry the two input sorts' statistics.
	Left, Right Stats
	// LeftIn and RightIn count elements consumed from each input; Out
	// counts joined elements emitted.
	LeftIn, RightIn, Out int64
	// MaxGroup is the largest equal-key right-side group buffered during
	// the join — its peak per-key memory, in elements.
	MaxGroup int
	// Elapsed is the end-to-end wall time of the join call.
	Elapsed time.Duration
	// Phases breaks Elapsed into "generate" (both sides' run generation
	// and merge setup) and "join" (draining the two merged orders).
	Phases []PhaseStat
}

// MergeJoin externally sorts both inputs and inner-joins them: for every
// pair (l, r) with cmp(l, r) == 0 it writes join(l, r) to dst, in ascending
// key order, left-then-right stream order within a key. cmp compares a left
// element to a right element by the join key and must be consistent with
// both sorters' comparators (ascending by that key), so matching keys meet
// as both merged streams drain. The join is many-to-many; only the current
// right-side key group is buffered, so memory beyond the two sorts is
// bounded by the largest set of equal-key right elements.
//
// The two sides may share a TempDir: their temporary files are namespaced
// apart. The context is honoured at batch boundaries in both sorts and in
// the join itself.
func MergeJoin[L, R, O any](ctx context.Context, left *Sorter[L], lsrc Source[L], right *Sorter[R], rsrc Source[R], cmp func(L, R) int, join func(L, R) O, dst Sink[O]) (JoinStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if left == nil || right == nil {
		return JoinStats{}, fmt.Errorf("repro: MergeJoin requires both sorters")
	}
	if cmp == nil || join == nil {
		return JoinStats{}, fmt.Errorf("repro: MergeJoin requires cmp and join functions")
	}
	// The root join span goes to the left sorter's tracer; each side's
	// sort spans go to that side's own tracer as usual.
	t := startOp(left.cfg.Trace, "merge_join")
	t.phase("generate")
	lst, lrset, err := left.openSorted(ctx, lsrc, "joinl")
	if err != nil {
		stats := JoinStats{}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	rst, rrset, err := right.openSorted(ctx, rsrc, "joinr")
	if err != nil {
		lst.Close()
		stats := JoinStats{Left: opSortStats(lrset, lst.Stats())}
		err = ctxErr(ctx, err)
		t.finish(&stats.Elapsed, &stats.Phases, err)
		return stats, err
	}
	t.phase("join")
	js, err := ops.MergeJoin[L, R, O](lst, rst, cmp, join, &ctxWriter[O]{ctx: ctx, dst: dst}, ctx.Err)
	lcerr, rcerr := lst.Close(), rst.Close()
	stats := JoinStats{
		Left:     opSortStats(lrset, lst.Stats()),
		Right:    opSortStats(rrset, rst.Stats()),
		LeftIn:   js.LeftIn,
		RightIn:  js.RightIn,
		Out:      js.Out,
		MaxGroup: js.MaxGroup,
	}
	if err == nil {
		err = lcerr
	}
	if err == nil {
		err = rcerr
	}
	err = ctxErr(ctx, err)
	t.finish(&stats.Elapsed, &stats.Phases, err)
	return stats, err
}
