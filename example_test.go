package repro_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro"
)

// errEOF is what a Source returns at end of stream.
var errEOF = io.EOF

// The generic constructor: a comparator plus options. Codecs for common
// element types (here string) are inferred; the run-generation policy
// defaults to "auto".
func ExampleNew() {
	s, err := repro.New(func(a, b string) bool { return a < b },
		repro.WithMemoryRecords(1024))
	if err != nil {
		panic(err)
	}
	sorted, _, err := s.SortSlice(context.Background(), []string{"pear", "apple", "quince", "fig"})
	if err != nil {
		panic(err)
	}
	fmt.Println(sorted)
	// Output: [apple fig pear quince]
}

// Selecting a fixed run-generation policy by name. Classic replacement
// selection collapses an already-ascending stream into a single run.
func ExampleWithPolicy() {
	in := make([]int64, 10000)
	for i := range in {
		in[i] = int64(i)
	}
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithPolicy("rs"),
		repro.WithMemoryRecords(512))
	if err != nil {
		panic(err)
	}
	_, stats, err := s.SortSlice(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("policy=%s runs=%d\n", stats.Policy, stats.Runs)
	// Output: policy=rs runs=1
}

// TopK with k within the memory budget never sorts: a bounded max-heap
// selects the k smallest in one pass and nothing spills.
func ExampleSorter_TopK() {
	in := []int64{42, 7, 19, 3, 88, 1, 56, 23}
	s, err := repro.New(func(a, b int64) bool { return a < b })
	if err != nil {
		panic(err)
	}
	var out sliceSink[int64]
	stats, err := s.TopK(context.Background(), sliceSource(in), 3, &out)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.vals, "sorted externally:", stats.Sorted)
	// Output: [1 3 7] sorted externally: false
}

// Select finds one order statistic — here the median — without sorting:
// within the memory budget a dualheap partition places the k smallest
// below a pivot and the answer is the bottom heap's root.
func ExampleSorter_Select() {
	in := []int64{42, 7, 19, 3, 88, 1, 56, 23, 61}
	s, err := repro.New(func(a, b int64) bool { return a < b })
	if err != nil {
		panic(err)
	}
	median, stats, err := s.Select(context.Background(), sliceSource(in), 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("median:", median, "sorted externally:", stats.Sorted)
	// Output: median: 23 sorted externally: false
}

// Quantiles returns several order statistics in one multiselect pass: the
// array is partitioned recursively at the middle remaining rank, so
// p50/p90/p99 together cost far less than a sort.
func ExampleSorter_Quantiles() {
	in := make([]int64, 1000)
	for i := range in {
		in[i] = int64((i * 7919) % 1000) // a permutation of 0..999
	}
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithMemoryRecords(2048))
	if err != nil {
		panic(err)
	}
	vals, _, err := s.Quantiles(context.Background(), sliceSource(in), []float64{0.5, 0.9, 0.99})
	if err != nil {
		panic(err)
	}
	fmt.Println("p50:", vals[0], "p90:", vals[1], "p99:", vals[2])
	// Output: p50: 499 p90: 899 p99: 989
}

// BottomK mirrors TopK through the same direction-parameterized selection
// core: a bounded min-heap keeps the k largest, ascending on output.
func ExampleSorter_BottomK() {
	in := []int64{42, 7, 19, 3, 88, 1, 56, 23}
	s, err := repro.New(func(a, b int64) bool { return a < b })
	if err != nil {
		panic(err)
	}
	var out sliceSink[int64]
	if _, err := s.BottomK(context.Background(), sliceSource(in), 3, &out); err != nil {
		panic(err)
	}
	fmt.Println(out.vals)
	// Output: [42 56 88]
}

// Distinct emits one element per equivalence class of the comparator, in
// ascending order.
func ExampleSorter_Distinct() {
	in := []int64{5, 3, 5, 1, 3, 3, 1}
	s, err := repro.New(func(a, b int64) bool { return a < b })
	if err != nil {
		panic(err)
	}
	var out sliceSink[int64]
	if _, err := s.Distinct(context.Background(), sliceSource(in), &out); err != nil {
		panic(err)
	}
	fmt.Println(out.vals)
	// Output: [1 3 5]
}

// GroupBy folds each run of same-key elements into one: here, summing the
// Aux payloads of records sharing a key.
func ExampleSorter_GroupBy() {
	in := []repro.Record{
		{Key: 2, Aux: 10}, {Key: 1, Aux: 1}, {Key: 2, Aux: 5}, {Key: 1, Aux: 2},
	}
	s, err := repro.New(func(a, b repro.Record) bool { return a.Key < b.Key })
	if err != nil {
		panic(err)
	}
	reduce := func(acc, v repro.Record) repro.Record { acc.Aux += v.Aux; return acc }
	var out sliceSink[repro.Record]
	st, err := s.GroupBy(context.Background(), sliceSource(in), nil, reduce, &out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v groups=%d\n", out.vals, st.Groups)
	// Output: [{1/3} {2/15}] groups=2
}

// MergeJoin externally sorts both inputs and inner-joins them on a
// cross-type comparator.
func ExampleMergeJoin() {
	users := []repro.Record{{Key: 1, Aux: 100}, {Key: 2, Aux: 200}}
	orders := []repro.Record{{Key: 2, Aux: 7}, {Key: 1, Aux: 3}, {Key: 2, Aux: 8}}
	byKey := func(a, b repro.Record) bool { return a.Key < b.Key }
	ls, err := repro.New(byKey)
	if err != nil {
		panic(err)
	}
	rs, err := repro.New(byKey)
	if err != nil {
		panic(err)
	}
	cmp := func(l, r repro.Record) int {
		switch {
		case l.Key < r.Key:
			return -1
		case l.Key > r.Key:
			return 1
		}
		return 0
	}
	join := func(l, r repro.Record) repro.Record { return repro.Record{Key: l.Key, Aux: l.Aux + r.Aux} }
	var out sliceSink[repro.Record]
	st, err := repro.MergeJoin(context.Background(), ls, sliceSource(users), rs, sliceSource(orders), cmp, join, &out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v pairs=%d\n", out.vals, st.Out)
	// Output: [{1/103} {2/207} {2/208}] pairs=3
}

// The classic fixed-record API remains as thin wrappers over
// Sorter[Record].
func ExampleSortSlice() {
	recs := []repro.Record{{Key: 9}, {Key: 4}, {Key: 7}}
	sorted, stats, err := repro.SortSlice(recs, repro.DefaultConfig(1000))
	if err != nil {
		panic(err)
	}
	fmt.Println(sorted[0].Key, sorted[1].Key, sorted[2].Key, "records:", stats.Records)
	// Output: 4 7 9 records: 3
}

// sliceSource adapts a slice to the Source interface for the examples.
type sliceReader[T any] struct {
	vals []T
	pos  int
}

func sliceSource[T any](vals []T) *sliceReader[T] { return &sliceReader[T]{vals: vals} }

func (s *sliceReader[T]) Read() (T, error) {
	if s.pos >= len(s.vals) {
		var zero T
		return zero, errEOF
	}
	v := s.vals[s.pos]
	s.pos++
	return v, nil
}

// sliceSink collects written elements for the examples.
type sliceSink[T any] struct{ vals []T }

func (s *sliceSink[T]) Write(v T) error { s.vals = append(s.vals, v); return nil }

// Compressing the spill stream: any named compression frames every spilled
// block with a CRC32 checksum, and flate/gzip shrink what actually reaches
// storage. Stats.IO reports raw versus stored bytes — on this dup-heavy
// input the stored side is a fraction of the raw side.
func ExampleWithCompression() {
	in := make([]int64, 100000)
	for i := range in {
		in[i] = int64(i % 100) // few distinct values: highly compressible
	}
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithMemoryRecords(1024),
		repro.WithCompression("flate"))
	if err != nil {
		panic(err)
	}
	sorted, stats, err := s.SortSlice(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Println("sorted:", sorted[0] <= sorted[len(sorted)-1])
	fmt.Println("backend:", stats.Storage)
	fmt.Println("spill compressed:", stats.IO.StoredBytesWritten*2 < stats.IO.RawBytesWritten)
	fmt.Println("verify failures:", stats.IO.VerifyFailures)
	// Output:
	// sorted: true
	// backend: block(flate)
	// spill compressed: true
	// verify failures: 0
}

// The full storage configuration: checksummed gzip framing plus an
// in-memory spill tier. Runs live in memory until the 64 KiB budget fills,
// then the growing file migrates to the temp directory mid-write;
// Stats.IO.Overflows counts those migrations.
func ExampleWithStorage() {
	dir, err := os.MkdirTemp("", "spill")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	in := make([]int64, 200000)
	for i := range in {
		in[i] = int64(len(in) - i) // descending: worst case for classic RS
	}
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithMemoryRecords(1024),
		repro.WithTempDir(dir),
		repro.WithStorage(repro.Storage{
			Compression:       "gzip",
			MemoryBudgetBytes: 64 << 10,
		}))
	if err != nil {
		panic(err)
	}
	_, stats, err := s.SortSlice(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Println("backend:", stats.Storage)
	fmt.Println("overflowed to disk:", stats.IO.Overflows > 0)
	fmt.Println("blocks checksummed:", stats.IO.BlocksWritten > 0)
	// Output:
	// backend: block(gzip)+tiered(65536)
	// overflowed to disk: true
	// blocks checksummed: true
}

// event is the element type of ExampleWithKeyCodec: ordered by host, then
// timestamp.
type event struct {
	Host string
	TS   int64
}

// eventCodec spills events as a length-prefixed host plus the timestamp.
type eventCodec struct{}

func (eventCodec) Append(buf []byte, v event) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.Host)))
	buf = append(buf, v.Host...)
	return binary.LittleEndian.AppendUint64(buf, uint64(v.TS))
}

func (eventCodec) Decode(buf []byte) (event, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || len(buf) < used+int(n)+8 {
		return event{}, 0, repro.ErrShortCodec
	}
	host := string(buf[used : used+int(n)])
	ts := int64(binary.LittleEndian.Uint64(buf[used+int(n):]))
	return event{Host: host, TS: ts}, used + int(n) + 8, nil
}

func (eventCodec) FixedSize() int { return 0 }

// Supplying normalized key bytes for a custom element type. The composite
// codec concatenates memcmp-ordered fields (an escaped variable-width
// string, then a sign-flipped big-endian int64), which moves the sort's
// hot comparisons off the comparator and onto cached integer prefixes and
// offset-value codes; Stats.Keyed confirms the keyed path engaged. The
// comparator stays authoritative — output is byte-identical either way.
func ExampleWithKeyCodec() {
	less := func(a, b event) bool {
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.TS < b.TS
	}
	kc, err := repro.CompositeKeyCodec[event](0, true,
		func(buf []byte, v event) []byte { return repro.AppendKeyString(buf, v.Host) },
		func(buf []byte, v event) []byte { return repro.AppendKeyInt64(buf, v.TS) },
	)
	if err != nil {
		panic(err)
	}
	s, err := repro.New(less,
		repro.WithMemoryRecords(1024),
		repro.WithCodec[event](eventCodec{}),
		repro.WithKeyCodec(kc))
	if err != nil {
		panic(err)
	}
	in := []event{{"web-2", 7}, {"web-1", 9}, {"web-2", 3}, {"db-1", 5}}
	sorted, stats, err := s.SortSlice(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Println("keyed:", stats.Keyed)
	for _, e := range sorted {
		fmt.Printf("%s@%d\n", e.Host, e.TS)
	}
	// Output:
	// keyed: true
	// db-1@5
	// web-1@9
	// web-2@3
	// web-2@7
}
