// Benchmarks that regenerate every table and figure of the paper at the
// harness' tiny scale (see internal/exp for the full-scale entry points and
// EXPERIMENTS.md for recorded results), plus ablation benches for the
// design decisions called out in DESIGN.md §4.
package repro

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/heap"
	"repro/internal/iosim"
	"repro/internal/record"
	"repro/internal/runio"
	"repro/internal/storage"
	"repro/internal/vfs"
)

// --- Paper tables and figures ---

func BenchmarkTable2_1_Polyphase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table21Polyphase(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_8_ModelDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig38Model(3, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_2_RunsByDataset(b *testing.B) {
	p := exp.Tiny()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		f, err := exp.RunFactorial(p, []gen.Kind{gen.Random}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.RunsByKind()[gen.Random]) == 0 {
			b.Fatal("no observations")
		}
	}
}

func BenchmarkTable5_2_ANOVARandom(b *testing.B) {
	p := exp.Tiny()
	p.Seeds = 2
	f, err := exp.RunFactorial(p, []gen.Kind{gen.Random}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Fit(gen.Random, exp.MainEffects(), nil, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_4_BufferSweep(b *testing.B) {
	p := exp.Tiny()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig54BufferSweep(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_13_RunLength(b *testing.B) {
	p := exp.Tiny()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table513(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_1_FanIn(b *testing.B) {
	p := exp.Tiny()
	p.FanInRuns = 10
	p.FanInRunRecords = 4_000
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig61FanIn(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep shrinks a Chapter 6 sweep to a single representative point per
// iteration.
func benchSweep(b *testing.B, fig func(exp.Params) ([]exp.TimePoint, error)) {
	b.Helper()
	p := exp.Tiny()
	p.TimeMemory = 2_000
	p.TimeInput = 100_000
	for i := 0; i < b.N; i++ {
		pts, err := fig(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig6_3_RandomSweep(b *testing.B)      { benchSweep(b, exp.Fig63) }
func BenchmarkFig6_5_MixedSweep(b *testing.B)       { benchSweep(b, exp.Fig65) }
func BenchmarkFig6_6_AlternatingSweep(b *testing.B) { benchSweep(b, exp.Fig66) }
func BenchmarkFig6_7_ReverseSweep(b *testing.B)     { benchSweep(b, exp.Fig67) }

// --- Run generation micro-benches (the engines behind every experiment) ---

func benchRunGen(b *testing.B, alg Algorithm, kind DatasetKind) {
	b.Helper()
	recs := Dataset(kind, 100_000, 1)
	cfg := DefaultConfig(2_000)
	cfg.Algorithm = alg
	b.SetBytes(int64(len(recs) * record.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SortSlice(recs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortSlice1M is the headline throughput benchmark cmd/bench
// tracks in BENCH_<n>.json: one million records sorted in the paper-style
// external configuration (memory 8192 records — the input is ~122 memory
// loads — with a multi-pass merge).
func BenchmarkSortSlice1M(b *testing.B) {
	recs := Dataset(DatasetRandom, 1_000_000, 42)
	cfg := DefaultConfig(1 << 13)
	b.SetBytes(int64(len(recs) * record.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SortSlice(recs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortRS_Random(b *testing.B)    { benchRunGen(b, RS, DatasetRandom) }
func BenchmarkSort2WRS_Random(b *testing.B)  { benchRunGen(b, TwoWayRS, DatasetRandom) }
func BenchmarkSort2WRS_Mixed(b *testing.B)   { benchRunGen(b, TwoWayRS, DatasetMixedBalanced) }
func BenchmarkSort2WRS_Reverse(b *testing.B) { benchRunGen(b, TwoWayRS, DatasetReverseSorted) }
func BenchmarkSortLSS_Random(b *testing.B)   { benchRunGen(b, LoadSortStore, DatasetRandom) }

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationDoubleHeapLayout compares the paper's single-array
// DoubleHeap against two independently allocated heaps of half capacity.
func BenchmarkAblationDoubleHeapLayout(b *testing.B) {
	const cap = 4096
	keys := make([]int64, cap)
	g := gen.New(gen.Config{Kind: gen.Random, N: cap, Seed: 1})
	for i := range keys {
		r, _ := g.Read()
		keys[i] = r.Key
	}
	b.Run("single-array", func(b *testing.B) {
		d := heap.NewDouble(cap, record.Less)
		for i := 0; i < cap/2; i++ {
			d.PushTop(heap.Item[record.Record]{Rec: record.Record{Key: keys[i]}})
			d.PushBottom(heap.Item[record.Record]{Rec: record.Record{Key: -keys[i]}})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := d.PopTop()
			d.PushTop(it)
			ib := d.PopBottom()
			d.PushBottom(ib)
		}
	})
	b.Run("two-heaps", func(b *testing.B) {
		top := heap.New(cap/2, false, record.Less)
		bottom := heap.New(cap/2, true, record.Less)
		for i := 0; i < cap/2; i++ {
			top.Push(heap.Item[record.Record]{Rec: record.Record{Key: keys[i]}})
			bottom.Push(heap.Item[record.Record]{Rec: record.Record{Key: -keys[i]}})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := top.Pop()
			top.Push(it)
			ib := bottom.Pop()
			bottom.Push(ib)
		}
	})
}

// BenchmarkAblationVictimBuffer quantifies the victim buffer's value on the
// mixed dataset: number of runs with and without it (reported as runs/op).
func BenchmarkAblationVictimBuffer(b *testing.B) {
	recs := gen.Generate(gen.Config{Kind: gen.MixedBalanced, N: 50_000, Seed: 1, Noise: 100})
	run := func(b *testing.B, setup core.BufferSetup) {
		b.Helper()
		var runs int
		for i := 0; i < b.N; i++ {
			fs := vfs.NewMemFS()
			res, err := core.Generate(record.NewSliceReader(recs), runio.RecordEmitter(fs, "v"), core.Config{
				Memory: 1_000, Setup: setup, BufferFrac: 0.02,
				Input: core.InMean, Output: core.OutRandom, Seed: 1,
			}, record.Key)
			if err != nil {
				b.Fatal(err)
			}
			runs = len(res.Runs)
		}
		b.ReportMetric(float64(runs), "runs")
	}
	b.Run("with-victim", func(b *testing.B) { run(b, core.BothBuffers) })
	b.Run("without-victim", func(b *testing.B) { run(b, core.InputBufferOnly) })
}

// BenchmarkAblationBackwardFormat compares reading a decreasing stream
// ascending via the Appendix A backward format (forward sequential reads)
// against naively reading a forward-written descending file backwards,
// measured in simulated disk time per op.
func BenchmarkAblationBackwardFormat(b *testing.B) {
	const n = 50_000
	b.Run("backward-format", func(b *testing.B) {
		disk := iosim.NewDisk(iosim.Defaults2010())
		fs := iosim.NewFS(vfs.NewMemFS(), disk)
		w, err := runio.NewBackwardWriter(storage.NewRaw(fs), "b", 0, 64, codec.Record16{}, record.Less)
		if err != nil {
			b.Fatal(err)
		}
		for i := n; i > 0; i-- {
			w.Write(record.Record{Key: int64(i)})
		}
		w.Close()
		files := w.Files()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, _ := runio.NewBackwardReader(storage.NewRaw(fs), "b", files, 1<<16, codec.Record16{})
			if _, err := record.ReadAll(r); err != nil {
				b.Fatal(err)
			}
			r.Close()
		}
		b.ReportMetric(float64(disk.Elapsed().Milliseconds())/float64(b.N), "simMs/op")
	})
	b.Run("reverse-read", func(b *testing.B) {
		disk := iosim.NewDisk(iosim.Defaults2010())
		fs := iosim.NewFS(vfs.NewMemFS(), disk)
		f, _ := fs.Create("fwd")
		buf := make([]byte, record.Size)
		for i := 0; i < n; i++ {
			record.Encode(buf, record.Record{Key: int64(n - i)})
			f.WriteAt(buf, int64(i*record.Size))
		}
		f.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, _ := fs.Open("fwd")
			// Read page-sized chunks from the end toward the start: every
			// read is a backward jump, i.e. a seek.
			page := make([]byte, 4096)
			for off := int64(n*record.Size) - 4096; off >= 0; off -= 4096 {
				if _, err := g.ReadAt(page, off); err != nil {
					b.Fatal(err)
				}
			}
			g.Close()
		}
		b.ReportMetric(float64(disk.Elapsed().Milliseconds())/float64(b.N), "simMs/op")
	})
}
