package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/record"
)

func TestSortSliceDefault(t *testing.T) {
	recs := Dataset(DatasetRandom, 10000, 1)
	out, stats, err := SortSlice(recs, DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if !record.IsSorted(out) {
		t.Fatal("output not sorted")
	}
	if !record.NewMultiset(out).Equal(record.NewMultiset(recs)) {
		t.Fatal("not a permutation")
	}
	if stats.Records != 10000 || stats.Runs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSortAllAlgorithms(t *testing.T) {
	recs := Dataset(DatasetMixedBalanced, 5000, 2)
	for _, alg := range []Algorithm{TwoWayRS, RS, LoadSortStore} {
		cfg := DefaultConfig(200)
		cfg.Algorithm = alg
		out, _, err := SortSlice(recs, cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !record.IsSorted(out) || len(out) != len(recs) {
			t.Fatalf("%v: bad output", alg)
		}
	}
}

func TestSortWithTempDir(t *testing.T) {
	recs := Dataset(DatasetReverseSorted, 5000, 3)
	cfg := DefaultConfig(100)
	cfg.TempDir = filepath.Join(t.TempDir(), "runs")
	out, stats, err := SortSlice(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !record.IsSorted(out) {
		t.Fatal("output not sorted")
	}
	if stats.Runs != 1 {
		t.Fatalf("2WRS on reverse input: runs = %d, want 1", stats.Runs)
	}
	// Temp dir must be clean afterwards.
	entries, err := os.ReadDir(cfg.TempDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temp files left: %v", entries)
	}
}

func TestSortFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	recs := Dataset(DatasetAlternating, 5000, 4)
	if err := WriteFile(in, recs); err != nil {
		t.Fatal(err)
	}
	stats, err := SortFile(in, out, DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 5000 {
		t.Fatalf("records = %d", stats.Records)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !record.IsSorted(got) || len(got) != len(recs) {
		t.Fatal("sorted file wrong")
	}
	if !record.NewMultiset(got).Equal(record.NewMultiset(recs)) {
		t.Fatal("sorted file lost records")
	}
}

func TestDatasetReaderStreams(t *testing.T) {
	r := DatasetReader(DatasetSorted, 100, 5)
	got, err := record.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || !record.IsSorted(got) {
		t.Fatal("dataset reader wrong")
	}
	// Deterministic per seed and matching the materialised form.
	mat := Dataset(DatasetSorted, 100, 5)
	for i := range mat {
		if mat[i] != got[i] {
			t.Fatal("reader and slice forms differ")
		}
	}
}

func TestDefaultConfigIsRecommended(t *testing.T) {
	cfg := DefaultConfig(1000)
	if cfg.Algorithm != TwoWayRS || cfg.FanIn != 10 || cfg.Setup != BothBuffers ||
		cfg.BufferFraction != 0.02 || cfg.Input != InputMean || cfg.Output != OutputRandom {
		t.Fatalf("DefaultConfig = %+v, not the paper's §5.3 recommendation", cfg)
	}
}

func TestHeuristicConfigurations(t *testing.T) {
	recs := Dataset(DatasetMixedImbalanced, 3000, 6)
	for _, in := range []InputHeuristic{InputRandom, InputAlternate, InputMean, InputMedian, InputUseful, InputBalancing} {
		for _, out := range []OutputHeuristic{OutputRandom, OutputAlternate, OutputUseful, OutputBalancing, OutputMinDistance} {
			cfg := DefaultConfig(100)
			cfg.Input, cfg.Output = in, out
			sorted, _, err := SortSlice(recs, cfg)
			if err != nil {
				t.Fatalf("in=%v out=%v: %v", in, out, err)
			}
			if !record.IsSorted(sorted) || len(sorted) != len(recs) {
				t.Fatalf("in=%v out=%v: bad output", in, out)
			}
		}
	}
}
