package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
)

// shuffledInt64 returns n pseudo-random int64s from a fixed seed.
func shuffledInt64(n int) []int64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	return vals
}

// parsePrometheus parses the text exposition into series → value, keyed by
// the full series name including labels (e.g. `m_bucket{le="+Inf"}`).
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	m := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		m[line[:i]] = v
	}
	return m
}

// TestObsSmoke drives a spilling keyed sort with every observability hook
// attached and validates the three exports: the Prometheus exposition
// matches the final Stats and Stats.IO exactly, the Chrome trace is
// well-formed with the generate and merge spans covering the elapsed
// time, and the progress reporter produced output.
func TestObsSmoke(t *testing.T) {
	tr := repro.NewTracer()
	reg := repro.NewMetrics()
	var progress bytes.Buffer
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithMemoryRecords(5_000),
		repro.WithTracer(tr),
		repro.WithMetrics(reg),
		repro.WithProgress(&progress, 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	out, stats, err := s.SortSlice(context.Background(), shuffledInt64(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("sorted %d of %d records", len(out), n)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("output out of order at %d", i)
		}
	}
	if stats.Runs < 2 {
		t.Fatalf("expected a spilling sort, got %d runs", stats.Runs)
	}
	if !stats.Keyed {
		t.Fatalf("expected the keyed path for int64 elements")
	}

	// Prometheus exposition equals the final Stats / Stats.IO.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	series := parsePrometheus(t, prom.String())
	want := map[string]float64{
		"extsort_records_in_total":                      float64(stats.Records),
		"extsort_records_out_total":                     float64(stats.Records),
		"extsort_runs_total":                            float64(stats.Runs),
		"extsort_run_length_records_count":              float64(stats.Runs),
		"extsort_run_length_records_sum":                float64(stats.Records),
		"extsort_spilled_raw_bytes_total":               float64(stats.IO.RawBytesWritten),
		"extsort_spilled_stored_bytes_total":            float64(stats.IO.StoredBytesWritten),
		"extsort_read_raw_bytes_total":                  float64(stats.IO.RawBytesRead),
		"extsort_read_stored_bytes_total":               float64(stats.IO.StoredBytesRead),
		"extsort_spill_blocks_written_total":            float64(stats.IO.BlocksWritten),
		"extsort_spill_blocks_read_total":               float64(stats.IO.BlocksRead),
		`extsort_phase_seconds_count{phase="generate"}`: 1,
		`extsort_phase_seconds_count{phase="merge"}`:    1,
	}
	for name, v := range want {
		got, ok := series[name]
		if !ok {
			t.Errorf("exposition is missing series %s", name)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if series["extsort_merge_ops_total"] < 1 {
		t.Errorf("expected at least one merge op, got %v", series["extsort_merge_ops_total"])
	}

	// Chrome trace: well-formed JSON whose generate and merge spans
	// account for (nearly) all of the sort's elapsed time.
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	counts := make(map[string]int)
	var phaseWall time.Duration
	for _, sp := range tr.Spans() {
		counts[sp.Name]++
		if sp.Name == "generate" || sp.Name == "merge" {
			phaseWall += sp.Duration
		}
	}
	if counts["generate"] != 1 || counts["merge"] != 1 {
		t.Fatalf("want exactly one generate and one merge span, got %v", counts)
	}
	if counts["run"] != stats.Runs {
		t.Errorf("traced %d run spans for %d runs", counts["run"], stats.Runs)
	}
	if counts["spill_write"] < stats.Runs {
		t.Errorf("traced %d spill_write spans for %d runs", counts["spill_write"], stats.Runs)
	}
	if counts["merge_op"] < 1 {
		t.Errorf("no merge_op spans recorded")
	}
	if phaseWall < stats.Elapsed*9/10 {
		t.Errorf("generate+merge spans cover %v of %v elapsed", phaseWall, stats.Elapsed)
	}

	if !strings.Contains(progress.String(), "done in") {
		t.Errorf("progress output missing completion line: %q", progress.String())
	}
}

// phasesWithinElapsed asserts the Phases breakdown is consistent with
// Elapsed and carries exactly the expected phase names in order.
func phasesWithinElapsed(t *testing.T, what string, elapsed time.Duration, phases []repro.PhaseStat, names ...string) {
	t.Helper()
	if elapsed <= 0 {
		t.Errorf("%s: Elapsed = %v, want > 0", what, elapsed)
	}
	var sum time.Duration
	var got []string
	for _, ph := range phases {
		if ph.Wall < 0 {
			t.Errorf("%s: phase %s has negative wall %v", what, ph.Name, ph.Wall)
		}
		sum += ph.Wall
		got = append(got, ph.Name)
	}
	if sum > elapsed {
		t.Errorf("%s: phases sum to %v > elapsed %v", what, sum, elapsed)
	}
	if strings.Join(got, ",") != strings.Join(names, ",") {
		t.Errorf("%s: phases %v, want %v", what, got, names)
	}
}

// TestPhasesAccountForElapsed is the regression test for the Elapsed /
// Phases contract across every entry point: the named phases always sum
// to at most the elapsed time, and each path reports its documented
// phase sequence.
func TestPhasesAccountForElapsed(t *testing.T) {
	ctx := context.Background()
	newSorter := func(mem int) *repro.Sorter[int64] {
		s, err := repro.New(func(a, b int64) bool { return a < b },
			repro.WithMemoryRecords(mem))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	vals := shuffledInt64(20_000)
	spill := newSorter(1_000) // forces the external paths
	mem := newSorter(1 << 20) // everything fits

	_, stats, err := spill.SortSlice(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "SortSlice", stats.Elapsed, stats.Phases, "generate", "merge")

	_, sstats, err := mem.Select(ctx, sliceSource(vals), 100)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "Select/mem", sstats.Elapsed, sstats.Phases, "read", "partition")

	_, sstats, err = spill.Select(ctx, sliceSource(vals), 100)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "Select/spill", sstats.Elapsed, sstats.Phases, "read", "generate", "select")
	phasesWithinElapsed(t, "Select/spill sort", sstats.Sort.Elapsed, sstats.Sort.Phases, "generate")

	_, qstats, err := spill.Quantiles(ctx, sliceSource(vals), []float64{0.25, 0.5, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "Quantiles/spill", qstats.Elapsed, qstats.Phases, "read", "generate", "select")

	var sink discard[int64]
	ostats, err := spill.BottomK(ctx, sliceSource(vals), 5_000, &sink)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "BottomK/spill", ostats.Elapsed, ostats.Phases, "generate", "select")

	ostats, err = mem.TopK(ctx, sliceSource(vals), 100, &sink)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "TopK/mem", ostats.Elapsed, ostats.Phases, "select")

	ostats, err = spill.Distinct(ctx, sliceSource(vals), &sink)
	if err != nil {
		t.Fatal(err)
	}
	phasesWithinElapsed(t, "Distinct", ostats.Elapsed, ostats.Phases, "generate", "distinct")
}

type discard[T any] struct{ n int }

func (d *discard[T]) Write(T) error { d.n++; return nil }

// TestSpanNestingParallelMerges checks the span tree invariants under a
// parallel merge: every run span hangs off the generate span, every
// merge_op span off the merge span, and no span references an unknown
// parent. Run with -race this also exercises the tracer's thread safety.
func TestSpanNestingParallelMerges(t *testing.T) {
	tr := repro.NewTracer()
	s, err := repro.New(func(a, b int64) bool { return a < b },
		repro.WithMemoryRecords(500),
		repro.WithFanIn(3),
		repro.WithParallelism(4),
		repro.WithTracer(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SortSlice(context.Background(), shuffledInt64(30_000)); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byID := make(map[int64]string, len(spans))
	var genID, mrgID int64
	for _, sp := range spans {
		byID[sp.ID] = sp.Name
		switch sp.Name {
		case "generate":
			genID = sp.ID
		case "merge":
			mrgID = sp.ID
		}
	}
	if genID == 0 || mrgID == 0 {
		t.Fatalf("missing generate/merge spans")
	}
	for _, sp := range spans {
		if sp.Parent != 0 {
			if _, ok := byID[sp.Parent]; !ok {
				t.Errorf("span %s (%d) references unknown parent %d", sp.Name, sp.ID, sp.Parent)
			}
		}
		switch sp.Name {
		case "run":
			if sp.Parent != genID {
				t.Errorf("run span %d parented to %d, want generate %d", sp.ID, sp.Parent, genID)
			}
		case "merge_op", "merge_final":
			if sp.Parent != mrgID {
				t.Errorf("%s span %d parented to %d, want merge %d", sp.Name, sp.ID, sp.Parent, mrgID)
			}
		}
	}
}

// TestMetricsOverheadGuard fails when a metrics+tracing-enabled sort
// regresses more than 5% (plus a small absolute cushion against scheduler
// noise) over the same sort with observability disabled. Mirrors the
// BENCH overhead row; skipped in -short mode.
func TestMetricsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	vals := shuffledInt64(300_000)
	sortOnce := func(opts ...repro.Option) time.Duration {
		opts = append([]repro.Option{repro.WithMemoryRecords(20_000)}, opts...)
		s, err := repro.New(func(a, b int64) bool { return a < b }, opts...)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, _, err := s.SortSlice(context.Background(), vals); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	best := func(opts ...repro.Option) time.Duration {
		b := sortOnce(opts...)
		for i := 0; i < 2; i++ {
			if d := sortOnce(opts...); d < b {
				b = d
			}
		}
		return b
	}
	// Retry the comparison a few times before failing: best-of-three damps
	// scheduler noise but does not eliminate it.
	var plain, observed time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		plain = best()
		observed = best(repro.WithTracer(repro.NewTracer()), repro.WithMetrics(repro.NewMetrics()))
		if observed <= plain+plain/20+20*time.Millisecond {
			return
		}
	}
	t.Fatalf("observability overhead too high: enabled %v vs disabled %v (>5%%)", observed, plain)
}
