package repro

import (
	"io"
	"time"

	"repro/internal/extsort"
	"repro/internal/obs"
)

// This file is the public observability surface: the tracer, metrics
// registry and progress reporter that Config (or the WithTracer /
// WithMetrics / WithProgress options) attach to a sort, plus the helper
// that times public operator calls into Elapsed/Phases statistics. The
// machinery lives in internal/obs; see DESIGN.md §"Observability" for the
// span taxonomy, the metric names and the overhead budget.

// Tracer records the spans and instant events of the sorts it is attached
// to: one "generate" span per sort covering run generation with one child
// "run" span per emitted run, one "merge" span covering the merge phase
// with a "merge_op" child per merge operation, "spill_write"/"spill_read"
// spans on the "spill" track for every spill file, and "policy_switch"
// events when the adaptive policy changes generator mid-stream. Export
// the result with WriteChromeTrace (chrome://tracing / Perfetto JSON) or
// WriteSpansJSONL, or walk Spans and Events directly. A Tracer is safe
// for concurrent use and may be shared by several sorts; a nil Tracer is
// a valid no-op.
type Tracer = obs.Tracer

// Span is one timed interval recorded by a Tracer.
type Span = obs.Span

// SpanData is the immutable record of a finished Span, as returned by
// Tracer.Spans.
type SpanData = obs.SpanData

// TraceEvent is the record of an instant event (e.g. a policy switch), as
// returned by Tracer.Events.
type TraceEvent = obs.EventData

// Metrics is a registry of live counters, gauges and histograms that the
// sorts it is attached to keep current: records in/out, runs emitted and
// their length distribution, merge operations and fan-in, spill I/O in
// raw and stored bytes, per-phase wall seconds. Expose it with
// WritePrometheus or serve it over HTTP with Handler. A Metrics registry
// is safe for concurrent use and may aggregate several sorts; a nil
// registry is a valid no-op.
type Metrics = obs.Registry

// ProgressConfig configures periodic progress reporting: human-readable
// lines (phase, records processed, rate, ETA when the total is known)
// written to W every Interval (default 1s).
type ProgressConfig = obs.Progress

// PhaseStat is one named phase of an operation's elapsed wall time, as
// reported by Stats.Phases, OpStats.Phases and SelectStats.Phases.
type PhaseStat = extsort.PhaseStat

// NewTracer returns an empty Tracer whose span timestamps count from now.
func NewTracer() *Tracer { return obs.New() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithTracer attaches a trace recorder to the sorter: every subsequent
// Sort, operator or selection call records its phase, run, merge and
// spill spans into t. Nil detaches tracing (the default).
func WithTracer(t *Tracer) Option {
	return func(s *sorterConfig) error { s.cfg.Trace = t; return nil }
}

// WithMetrics attaches a metrics registry to the sorter: every subsequent
// Sort, operator or selection call keeps the registry's counters, gauges
// and histograms current. Nil detaches metrics (the default).
func WithMetrics(m *Metrics) Option {
	return func(s *sorterConfig) error { s.cfg.Metrics = m; return nil }
}

// WithProgress emits periodic progress lines (phase, records processed,
// rate, ETA when the input size is known) to w every interval; interval 0
// defaults to one second. A nil writer disables reporting (the default).
func WithProgress(w io.Writer, interval time.Duration) Option {
	return func(s *sorterConfig) error {
		if w == nil {
			s.cfg.Progress = nil
			return nil
		}
		s.cfg.Progress = &ProgressConfig{W: w, Interval: interval}
		return nil
	}
}

// opTimer measures one public operator call: its end-to-end wall time,
// the named phases it passes through, and the operator's root trace span.
// The zero-cost discipline matches the rest of the layer — with no tracer
// attached the span calls are nil no-ops and only two time.Now samples
// per phase remain.
type opTimer struct {
	sp      *Span
	start   time.Time
	name    string
	phaseAt time.Time
	phases  []PhaseStat
}

// startOp opens the operator's root span and starts the clock.
func startOp(tr *Tracer, op string, attrs ...obs.Attr) *opTimer {
	return &opTimer{sp: tr.Start(op, attrs...), start: time.Now()}
}

// phase closes the currently open phase, if any, and opens a named one.
func (t *opTimer) phase(name string) {
	now := time.Now()
	if t.name != "" {
		t.phases = append(t.phases, PhaseStat{Name: t.name, Wall: now.Sub(t.phaseAt)})
	}
	t.name, t.phaseAt = name, now
}

// finish closes the open phase, stores the elapsed time and phase
// breakdown through the given pointers, and ends the root span —
// annotated with the error when the operation failed.
func (t *opTimer) finish(elapsed *time.Duration, phases *[]PhaseStat, err error) {
	t.phase("")
	*elapsed = time.Since(t.start)
	*phases = t.phases
	if err != nil {
		t.sp.End(obs.Str("error", err.Error()))
		return
	}
	t.sp.End()
}

// swapsCounter resolves the dualheap swap counter on the sorter's
// registry (nil when no registry is attached).
func (s *Sorter[T]) swapsCounter() *obs.Counter {
	return s.cfg.Metrics.Counter(obs.MHeapSwaps, "Dualheap root exchanges during in-memory selection.")
}
